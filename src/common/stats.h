// Streaming statistics used by the telemetry layers (NoC, runtime, DPE).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cim {

// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void Reset() { *this = RunningStat(); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return count_ > 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return count_ > 0 ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets, plus
// quantile estimation by linear interpolation within buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void Add(double x) {
    ++total_;
    stat_.Add(x);
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[std::min(idx, counts_.size() - 1)];
  }

  // Quantile q in [0,1]; clamps to the histogram range when mass falls in
  // the under/overflow buckets.
  [[nodiscard]] double Quantile(double q) const {
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double next = cumulative + static_cast<double>(counts_[i]);
      if (next >= target && counts_[i] > 0) {
        const double frac =
            (target - cumulative) / static_cast<double>(counts_[i]);
        return lo_ + (static_cast<double>(i) + frac) * width;
      }
      cumulative = next;
    }
    return hi_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const RunningStat& stat() const { return stat_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  RunningStat stat_;
};

// Shared accounting record threaded through simulated operations: every
// component adds the latency and energy it contributes. This is the single
// currency in which CPUs, GPUs and CIM fabrics are compared.
struct CostReport {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  double bytes_moved = 0.0;  // data crossing a chip/package boundary
  std::uint64_t operations = 0;

  CostReport& operator+=(const CostReport& other) {
    latency_ns += other.latency_ns;
    energy_pj += other.energy_pj;
    bytes_moved += other.bytes_moved;
    operations += other.operations;
    return *this;
  }
  friend CostReport operator+(CostReport a, const CostReport& b) {
    a += b;
    return a;
  }

  [[nodiscard]] double average_power_watts() const {
    return latency_ns > 0.0 ? (energy_pj / latency_ns) * 1e-3 : 0.0;
  }
  // Effective bandwidth of data touched during the operation.
  [[nodiscard]] double bandwidth_bytes_per_sec() const {
    return latency_ns > 0.0 ? bytes_moved / (latency_ns * 1e-9) : 0.0;
  }
};

}  // namespace cim
