// Fixed-size thread pool for host-side parallelism.
//
// The simulator exploits host threads the way the modeled hardware exploits
// crossbar parallelism: independent engine tiles (and independent batch
// elements) run concurrently. The pool is deliberately work-stealing-free —
// a mutex-protected FIFO plus a shared index counter for ParallelFor — so
// its behaviour is easy to reason about under ThreadSanitizer and its
// scheduling never influences simulation results (all RNG streams are
// derived per work item, never per thread; see DESIGN.md § Threading and
// determinism).
//
// This header is the only place in the repository allowed to touch
// std::thread (enforced by the cimlint `raw-thread` rule): every other
// component expresses parallelism through Submit/ParallelFor so that
// shutdown, exception propagation and utilization accounting stay in one
// audited spot.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace cim {

// Host parallelism available to simulation runtimes; at least 1. Wrapped
// here so std::thread stays confined to this header (cimlint `raw-thread`).
[[nodiscard]] inline std::size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

// A dedicated long-lived thread for background service loops (e.g. the
// cim::serve dispatcher). Unlike ThreadPool::Submit, the loop is not a
// data-parallel work item: it runs outside any parallel region
// (ThreadPool::InParallelRegion() stays false inside it), so the loop body
// may freely drive ParallelFor-based runtimes underneath without tripping
// the nested-region guard. The loop function must return on its own
// shutdown signal; the destructor joins and therefore blocks until it does.
class ServiceThread {
 public:
  explicit ServiceThread(std::function<void()> loop)
      : thread_(std::move(loop)) {}

  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  ~ServiceThread() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

class ThreadPool {
 public:
  // Per-worker counters since construction, exposed so the runtime's load
  // balancer can see real utilization instead of guessed numbers.
  struct WorkerStats {
    std::uint64_t tasks = 0;
    double busy_ns = 0.0;
  };

  // `workers` background threads. The caller of ParallelFor participates in
  // the loop as well, so total concurrency is workers + 1. A pool with zero
  // workers is valid: ParallelFor runs entirely on the caller and Submit
  // executes inline — the serial fallback used by batch-1 configurations.
  explicit ThreadPool(std::size_t workers)
      : slots_(workers > 0 ? std::make_unique<Slot[]>(workers) : nullptr),
        worker_count_(workers),
        start_time_(std::chrono::steady_clock::now()) {
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains every already-submitted task, then joins all workers. Safe to
  // destroy while ParallelFor helpers are queued (the caller of ParallelFor
  // always returns before the pool can be destroyed on another thread —
  // the pool is not itself thread-safe against concurrent destruction).
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

  // True while the current thread is executing inside any pool's worker
  // task or ParallelFor drain loop. Used by callers to pick the serial path
  // instead of nesting parallel regions (nested ParallelFor throws).
  [[nodiscard]] static bool InParallelRegion() { return tl_in_parallel_; }

  // Enqueue one task and return a future for its result. With zero workers
  // the task runs inline on the calling thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (worker_count_ == 0) {
      (*task)();
      return future;
    }
    Enqueue([task] { (*task)(); });
    return future;
  }

  // Run body(i) for every i in [0, n). Blocks until all iterations finish.
  // The calling thread participates, so the call makes progress even with
  // zero workers. The first exception thrown by any iteration is rethrown
  // on the calling thread after every in-flight iteration has completed;
  // remaining unclaimed iterations are abandoned.
  //
  // Nested calls (from inside a pool task or another ParallelFor) throw
  // std::logic_error: nesting would deadlock-prone-ly tie up workers, and
  // every caller in this codebase has a serial fallback instead.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body) {
    if (tl_in_parallel_) {
      throw std::logic_error(
          "nested ThreadPool::ParallelFor (use the serial path when "
          "InParallelRegion() is true)");
    }
    if (n == 0) return;
    auto state = std::make_shared<LoopState>();
    state->n = n;
    state->body = &body;

    const std::size_t helpers =
        worker_count_ < n ? worker_count_ : n;
    state->pending_helpers.store(helpers, std::memory_order_relaxed);
    for (std::size_t h = 0; h < helpers; ++h) {
      Enqueue([state] {
        Drain(*state);
        if (state->pending_helpers.fetch_sub(1,
                                             std::memory_order_acq_rel) ==
            1) {
          std::lock_guard<std::mutex> lock(state->done_mutex);
          state->done_cv.notify_all();
        }
      });
    }

    tl_in_parallel_ = true;
    Drain(*state);
    tl_in_parallel_ = false;

    {
      std::unique_lock<std::mutex> lock(state->done_mutex);
      state->done_cv.wait(lock, [&] {
        return state->pending_helpers.load(std::memory_order_acquire) == 0;
      });
    }
    if (state->exception) std::rethrow_exception(state->exception);
  }

  // Counters for worker `w` (0 <= w < worker_count()).
  [[nodiscard]] WorkerStats StatsOf(std::size_t w) const {
    WorkerStats stats;
    stats.tasks = slots_[w].tasks.load(std::memory_order_relaxed);
    stats.busy_ns = static_cast<double>(
        slots_[w].busy_ns.load(std::memory_order_relaxed));
    return stats;
  }

  // Fraction of wall-clock time worker `w` spent executing tasks since the
  // pool was constructed, clamped to [0, 1].
  [[nodiscard]] double Utilization(std::size_t w) const {
    const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_time_)
                          .count();
    if (wall <= 0) return 0.0;
    const double fraction =
        StatsOf(w).busy_ns / static_cast<double>(wall);
    return fraction > 1.0 ? 1.0 : fraction;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  struct LoopState {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> aborted{false};
    std::atomic<std::size_t> pending_helpers{0};
    std::mutex exception_mutex;
    std::exception_ptr exception;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  static void Drain(LoopState& state) {
    while (!state.aborted.load(std::memory_order_acquire)) {
      const std::size_t i =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state.n) break;
      try {
        (*state.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.exception_mutex);
        if (!state.exception) state.exception = std::current_exception();
        state.aborted.store(true, std::memory_order_release);
      }
    }
  }

  void Enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  }

  void WorkerLoop(std::size_t w) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      const auto begin = std::chrono::steady_clock::now();
      tl_in_parallel_ = true;
      // Counted before the body runs: task() may fulfil a Submit future,
      // and a caller returning from .get() must observe this task in the
      // worker's totals.
      slots_[w].tasks.fetch_add(1, std::memory_order_relaxed);
      task();  // packaged_task / Drain absorb exceptions
      tl_in_parallel_ = false;
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - begin)
              .count();
      slots_[w].busy_ns.fetch_add(static_cast<std::uint64_t>(elapsed),
                                  std::memory_order_relaxed);
    }
  }

  static thread_local bool tl_in_parallel_;

  std::unique_ptr<Slot[]> slots_;
  std::size_t worker_count_;
  std::chrono::steady_clock::time_point start_time_;
  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

inline thread_local bool ThreadPool::tl_in_parallel_ = false;

}  // namespace cim
