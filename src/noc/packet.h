// Packet abstraction for the CIM interconnect (§III: interconnects are an
// integral part of the CIM model; §IV: security is packet- and
// stream-based).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace cim::noc {

// Node coordinate in the 2-D mesh.
struct NodeId {
  std::uint16_t x = 0;
  std::uint16_t y = 0;

  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.x == b.x && a.y == b.y;
  }
};

// QoS class maps to a virtual channel; lower value = higher priority
// (§IV.B: quality of service via provisioned interconnect).
enum class QosClass : std::uint8_t {
  kControl = 0,   // reconfiguration, fault notifications
  kRealtime = 1,  // SLA-bound streams
  kBulk = 2,      // best-effort data
};
inline constexpr int kQosClassCount = 3;

// What the packet carries. kCode enables the self-programmable dataflow
// model (§III.B): packets that reprogram micro-units on arrival.
enum class PayloadKind : std::uint8_t {
  kData = 0,
  kConfig = 1,
  kCode = 2,
};

struct Packet {
  std::uint64_t id = 0;
  std::uint64_t stream_id = 0;
  NodeId source;
  NodeId destination;
  std::uint32_t payload_bytes = 64;
  QosClass qos = QosClass::kBulk;
  PayloadKind kind = PayloadKind::kData;
  bool encrypted = false;
  // Authentication tag carried when the security layer signed the packet
  // (data verified against the processing element, §IV.A).
  std::uint32_t auth_tag = 0;
  // Opaque payload for code-carrying / config packets; data packets leave
  // this empty and only account for payload_bytes.
  std::vector<std::uint8_t> inline_payload;

  TimeNs injected_at{0.0};
};

}  // namespace cim::noc
