// Partition isolation (§IV.B "dynamic hardware isolation"): CIM nodes are
// assigned to partitions and cross-partition traffic is denied unless an
// explicit flow was granted — the NFV-style slicing the paper describes.
//
// Admission is enforced where packets are injected, so the mechanism lives
// in the NoC layer; policy-level code and the security suite include it
// from here directly (see tools/cimlint/layers.txt for the layering).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "common/status.h"
#include "noc/packet.h"

namespace cim::noc {

class PartitionManager {
 public:
  static constexpr std::uint32_t kUnassigned = 0;

  // Assign a node to a partition (> 0). Reassignment is allowed — dynamic
  // isolation means partitions can change at runtime.
  void Assign(NodeId node, std::uint32_t partition) {
    assignments_[Key(node)] = partition;
  }

  [[nodiscard]] std::uint32_t PartitionOf(NodeId node) const {
    const auto it = assignments_.find(Key(node));
    return it == assignments_.end() ? kUnassigned : it->second;
  }

  // Permit traffic from partition `from` to partition `to`.
  void GrantFlow(std::uint32_t from, std::uint32_t to) {
    allowed_flows_.insert({from, to});
  }
  void RevokeFlow(std::uint32_t from, std::uint32_t to) {
    allowed_flows_.erase({from, to});
  }

  // Admission check for a packet: same-partition traffic always passes;
  // cross-partition traffic requires a granted flow; unassigned nodes are
  // denied (fail-closed).
  [[nodiscard]] Status Admit(const Packet& packet) const {
    const std::uint32_t src = PartitionOf(packet.source);
    const std::uint32_t dst = PartitionOf(packet.destination);
    if (src == kUnassigned || dst == kUnassigned) {
      return PermissionDenied("endpoint not assigned to a partition");
    }
    if (src == dst) return Status::Ok();
    if (allowed_flows_.contains({src, dst})) return Status::Ok();
    return PermissionDenied("cross-partition flow not granted");
  }

  [[nodiscard]] std::size_t assigned_nodes() const {
    return assignments_.size();
  }

 private:
  static std::uint32_t Key(NodeId node) {
    return (static_cast<std::uint32_t>(node.y) << 16) | node.x;
  }

  std::map<std::uint32_t, std::uint32_t> assignments_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> allowed_flows_;
};

}  // namespace cim::noc
