#include "noc/mesh.h"

#include <utility>

#include "common/contracts.h"

namespace cim::noc {

Expected<MeshNoc> MeshNoc::Create(const MeshParams& params,
                                  EventQueue* queue) {
  if (queue == nullptr) return InvalidArgument("event queue required");
  if (Status s = params.Validate(); !s.ok()) return s;
  return MeshNoc(params, queue);
}

MeshNoc::MeshNoc(const MeshParams& params, EventQueue* queue)
    : params_(params), queue_(queue) {
  const std::size_t node_count =
      static_cast<std::size_t>(params.width) * params.height;
  nodes_.resize(node_count);
  links_.resize(node_count * kDirectionCount);
}

NodeId MeshNoc::Neighbor(NodeId n, Direction dir) {
  switch (dir) {
    case Direction::kEast: return {static_cast<std::uint16_t>(n.x + 1), n.y};
    case Direction::kWest: return {static_cast<std::uint16_t>(n.x - 1), n.y};
    case Direction::kNorth: return {n.x, static_cast<std::uint16_t>(n.y + 1)};
    case Direction::kSouth: return {n.x, static_cast<std::uint16_t>(n.y - 1)};
  }
  return n;
}

void MeshNoc::SetDeliveryHandler(NodeId node, DeliveryHandler handler) {
  // Wiring a handler to a node outside the mesh was silently ignored, which
  // turned topology bugs into "handler never fires" mysteries.
  CIM_CHECK(InBounds(node));
  nodes_[NodeIndex(node)].handler = std::move(handler);
}

Status MeshNoc::Inject(Packet packet) {
  if (!InBounds(packet.source) || !InBounds(packet.destination)) {
    return InvalidArgument("packet endpoints outside mesh");
  }
  if (nodes_[NodeIndex(packet.source)].failed) {
    return Unavailable("source node failed");
  }
  packet.injected_at = queue_->now();
  ++telemetry_.injected;
  queue_->ScheduleAfter(TimeNs(0.0), [this, packet = std::move(packet)] {
    ArriveAt(packet, packet.source, 0);
  });
  return Status::Ok();
}

Status MeshNoc::SetNodeFailed(NodeId node, bool failed) {
  if (!InBounds(node)) return OutOfRange("node outside mesh");
  nodes_[NodeIndex(node)].failed = failed;
  return Status::Ok();
}

Status MeshNoc::SetLinkFailed(NodeId from, Direction dir, bool failed) {
  if (!InBounds(from) || !InBounds(Neighbor(from, dir))) {
    return OutOfRange("link outside mesh");
  }
  links_[LinkIndex(from, dir)].failed = failed;
  return Status::Ok();
}

bool MeshNoc::IsNodeFailed(NodeId node) const {
  return InBounds(node) && nodes_[NodeIndex(node)].failed;
}

const RunningStat* MeshNoc::StreamLatency(std::uint64_t stream) const {
  const auto it = stream_latency_.find(stream);
  return it == stream_latency_.end() ? nullptr : &it->second;
}

Expected<Direction> MeshNoc::NextHop(NodeId at, NodeId dst,
                                     bool* rerouted) const {
  *rerouted = false;
  // Dimension-order preference: X first, then Y.
  Direction preferred;
  if (dst.x != at.x) {
    preferred = dst.x > at.x ? Direction::kEast : Direction::kWest;
  } else {
    preferred = dst.y > at.y ? Direction::kNorth : Direction::kSouth;
  }
  const auto usable = [&](Direction dir) {
    const NodeId next = Neighbor(at, dir);
    if (!InBounds(next) || links_[LinkIndex(at, dir)].failed) return false;
    // Avoid routing *through* a dead node; stepping onto a dead final
    // destination is allowed (the drop is charged to the destination).
    if (!(next == dst) && nodes_[NodeIndex(next)].failed) return false;
    return true;
  };
  if (usable(preferred)) return preferred;

  // Single-turn failover: detour along the perpendicular dimension,
  // preferring the direction that makes progress toward the destination.
  std::array<Direction, 3> fallbacks{};
  std::size_t n = 0;
  if (dst.x != at.x) {
    fallbacks[n++] = dst.y >= at.y ? Direction::kNorth : Direction::kSouth;
    fallbacks[n++] = dst.y >= at.y ? Direction::kSouth : Direction::kNorth;
  } else {
    fallbacks[n++] = dst.x >= at.x ? Direction::kEast : Direction::kWest;
    fallbacks[n++] = dst.x >= at.x ? Direction::kWest : Direction::kEast;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (usable(fallbacks[i])) {
      *rerouted = true;
      return fallbacks[i];
    }
  }
  return Unavailable("no usable link toward destination");
}

void MeshNoc::Drop(const Packet& packet, DropReason reason) {
  ++telemetry_.dropped;
  if (on_drop_) on_drop_(packet, reason);
}

void MeshNoc::ArriveAt(Packet packet, NodeId node, int hops) {
  CIM_DCHECK(InBounds(node));
  if (nodes_[NodeIndex(node)].failed) {
    Drop(packet, DropReason::kNodeFailed);
    return;
  }
  if (node == packet.destination) {
    ++telemetry_.delivered;
    const double latency = (queue_->now() - packet.injected_at).ns;
    telemetry_.latency_ns.Add(latency);
    telemetry_.latency_by_class[static_cast<std::size_t>(packet.qos)].Add(
        latency);
    stream_latency_[packet.stream_id].Add(latency);
    const Node& dst = nodes_[NodeIndex(node)];
    if (dst.handler) {
      dst.handler(Delivery{std::move(packet), queue_->now(), hops});
    }
    return;
  }
  // Hop cap breaks detour livelock when a region is fully failed.
  const int hop_cap = 4 * params_.width * params_.height;
  if (hops >= hop_cap) {
    Drop(packet, DropReason::kUnroutable);
    return;
  }
  bool rerouted = false;
  auto dir = NextHop(node, packet.destination, &rerouted);
  if (!dir.ok()) {
    Drop(packet, DropReason::kUnroutable);
    return;
  }
  if (rerouted) ++telemetry_.rerouted_hops;
  TraverseLink(std::move(packet), node, *dir, hops);
}

void MeshNoc::TraverseLink(Packet packet, NodeId from, Direction dir,
                           int hops) {
  const std::size_t link_idx = LinkIndex(from, dir);
  Link& link = links_[link_idx];
  link.queues[static_cast<std::size_t>(packet.qos)].push_back(
      std::move(packet));
  link.queued_hops[static_cast<std::size_t>(packet.qos)].push_back(hops);
  if (!link.drain_scheduled) {
    link.drain_scheduled = true;
    const TimeNs when =
        link.busy_until > queue_->now() ? link.busy_until : queue_->now();
    queue_->ScheduleAt(when,
                       [this, link_idx, from, dir] {
                         DrainLink(link_idx, from, dir);
                       });
  }
}

void MeshNoc::DrainLink(std::size_t link_idx, NodeId from, Direction dir) {
  Link& link = links_[link_idx];
  link.drain_scheduled = false;

  // If the link failed while packets were queued, reroute them all.
  if (link.failed) {
    for (int cls = 0; cls < kQosClassCount; ++cls) {
      while (!link.queues[cls].empty()) {
        Packet packet = std::move(link.queues[cls].front());
        link.queues[cls].pop_front();
        const int hops = link.queued_hops[cls].front();
        link.queued_hops[cls].pop_front();
        ArriveAt(std::move(packet), from, hops);
      }
    }
    return;
  }

  // Service the highest-priority non-empty class.
  for (int cls = 0; cls < kQosClassCount; ++cls) {
    if (link.queues[cls].empty()) continue;
    Packet packet = std::move(link.queues[cls].front());
    link.queues[cls].pop_front();
    const int hops = link.queued_hops[cls].front();
    link.queued_hops[cls].pop_front();

    const TimeNs serialization = SerializationDelay(packet.payload_bytes);
    link.busy_until = queue_->now() + serialization;
    telemetry_.cost.energy_pj +=
        params_.hop_energy_per_byte.pj * packet.payload_bytes +
        params_.router_energy.pj;
    telemetry_.cost.bytes_moved += packet.payload_bytes;
    telemetry_.cost.latency_ns += serialization.ns;
    ++telemetry_.cost.operations;

    const NodeId next = Neighbor(from, dir);
    const TimeNs arrival = queue_->now() + params_.router_latency +
                           params_.link_latency + serialization;
    queue_->ScheduleAt(arrival,
                       [this, packet = std::move(packet), next, hops] {
                         ArriveAt(packet, next, hops + 1);
                       });
    break;
  }

  // More traffic pending: schedule the next drain when the link frees.
  bool any_pending = false;
  for (const auto& q : link.queues) {
    if (!q.empty()) any_pending = true;
  }
  if (any_pending) {
    link.drain_scheduled = true;
    queue_->ScheduleAt(link.busy_until, [this, link_idx, from, dir] {
      DrainLink(link_idx, from, dir);
    });
  }
}

}  // namespace cim::noc
