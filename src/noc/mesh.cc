#include "noc/mesh.h"

#include <algorithm>
#include <utility>

#include "common/contracts.h"

namespace cim::noc {

Expected<MeshNoc> MeshNoc::Create(const MeshParams& params,
                                  EventQueue* queue) {
  if (queue == nullptr) return InvalidArgument("event queue required");
  if (Status s = params.Validate(); !s.ok()) return s;
  return MeshNoc(params, queue);
}

MeshNoc::MeshNoc(const MeshParams& params, EventQueue* queue)
    : params_(params), queue_(queue) {
  const std::size_t node_count =
      static_cast<std::size_t>(params.width) * params.height;
  nodes_.resize(node_count);
  links_.resize(node_count * kDirectionCount);
  if (params_.path == NocPath::kFlat) {
    flat_links_.resize(node_count * kDirectionCount);
  }
}

NodeId MeshNoc::Neighbor(NodeId n, Direction dir) {
  switch (dir) {
    case Direction::kEast: return {static_cast<std::uint16_t>(n.x + 1), n.y};
    case Direction::kWest: return {static_cast<std::uint16_t>(n.x - 1), n.y};
    case Direction::kNorth: return {n.x, static_cast<std::uint16_t>(n.y + 1)};
    case Direction::kSouth: return {n.x, static_cast<std::uint16_t>(n.y - 1)};
  }
  return n;
}

void MeshNoc::SetDeliveryHandler(NodeId node, DeliveryHandler handler) {
  // Wiring a handler to a node outside the mesh was silently ignored, which
  // turned topology bugs into "handler never fires" mysteries.
  CIM_CHECK(InBounds(node));
  nodes_[NodeIndex(node)].handler = std::move(handler);
}

void MeshNoc::SetDeliverySink(NodeId node, DeliverySink* sink) {
  CIM_CHECK(InBounds(node));
  nodes_[NodeIndex(node)].sink = sink;
}

Status MeshNoc::AdmitPacket(Packet& packet) {
  if (!InBounds(packet.source) || !InBounds(packet.destination)) {
    return InvalidArgument("packet endpoints outside mesh");
  }
  // When no fault is armed (any_failure_ false) the node checks are
  // vacuously clear and NextHop cannot fail, so the flat path skips all
  // three probes on healthy meshes. The reference path runs them
  // unconditionally: it is the pre-optimization oracle, and its per-packet
  // injection cost is the baseline bench_fabric_cosim's throughput gate
  // measures against. Either way both paths reach identical decisions.
  const bool probe = any_failure_ || params_.path == NocPath::kReference;
  if (probe && nodes_[NodeIndex(packet.source)].failed) {
    // Never entered the network: not counted as injected.
    return Unavailable("source node failed");
  }
  packet.injected_at = queue_->now();
  ++telemetry_.injected;
  // Source-detectable faults drop here, counted, so conservation
  // (injected == delivered + dropped) holds without waiting for the event.
  if (probe) {
    if (nodes_[NodeIndex(packet.destination)].failed) {
      Drop(packet, DropReason::kNodeFailed);
      return Unavailable("destination node failed");
    }
    if (!(packet.source == packet.destination)) {
      bool rerouted = false;
      if (!NextHop(packet.source, packet.destination, &rerouted).ok()) {
        Drop(packet, DropReason::kUnroutable);
        return FailedPrecondition("no usable link out of source");
      }
    }
  }
  return Status::Ok();
}

Status MeshNoc::Inject(Packet packet) {
  if (Status s = AdmitPacket(packet); !s.ok()) return s;
  if (params_.path == NocPath::kFlat) {
    const NodeId source = packet.source;
    const std::uint32_t idx = AllocFlight(std::move(packet), source, 0);
    queue_->ScheduleTagAfter(TimeNs(0.0), this, idx);
  } else {
    queue_->ScheduleAfter(TimeNs(0.0), [this, packet = std::move(packet)] {
      ArriveAt(packet, packet.source, 0);
    });
  }
  return Status::Ok();
}

Status MeshNoc::InjectBurst(std::span<Packet> packets) {
  queue_->Reserve(packets.size());
  if (params_.path == NocPath::kFlat) {
    // Batched event insertion: admitted packets go straight into flight
    // slots and one tagged event covers the whole burst. Its dispatch
    // replays the staged arrivals in injection order at the injection
    // timestamp — the same processing order, times and decisions as N
    // individual arrival events, for one heap entry instead of N.
    if (flight_free_.size() < packets.size()) {
      flights_.reserve(flights_.size() + packets.size() - flight_free_.size());
    }
    burst_staged_.reserve(burst_staged_.size() + packets.size());
    Status first = Status::Ok();
    std::uint64_t staged = 0;
    if (!any_failure_) {
      // Healthy fast loop: AdmitPacket's fault probes are vacuous and its
      // status is always Ok here, so admission reduces to the bounds
      // checks, one shared timestamp and a bulk telemetry add.
      const TimeNs now = queue_->now();
      for (Packet& packet : packets) {
        if (!InBounds(packet.source) || !InBounds(packet.destination)) {
          if (first.ok()) first = InvalidArgument("packet endpoints outside mesh");
          continue;
        }
        packet.injected_at = now;
        const NodeId source = packet.source;
        burst_staged_.push_back(AllocFlight(std::move(packet), source, 0));
        ++staged;
      }
      telemetry_.injected += staged;
    } else {
      for (Packet& packet : packets) {
        if (Status s = AdmitPacket(packet); !s.ok()) {
          if (first.ok()) first = std::move(s);
          continue;
        }
        const NodeId source = packet.source;
        burst_staged_.push_back(AllocFlight(std::move(packet), source, 0));
        ++staged;
      }
    }
    if (staged > 0) {
      queue_->ScheduleTagAfter(TimeNs(0.0), this, kTagBurstBit | staged);
    }
    return first;
  }
  Status first = Status::Ok();
  for (Packet& packet : packets) {
    Status s = Inject(std::move(packet));
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

Status MeshNoc::InjectBurst(std::vector<Packet>&& packets) {
  if (params_.path != NocPath::kFlat || any_failure_) {
    // Per-packet admission covers the fault probes and the reference
    // path's closure scheduling; zero-copy staging only pays — and is only
    // decision-equivalent without re-probing — on the healthy flat path.
    return InjectBurst(std::span<Packet>(packets));
  }
  const TimeNs now = queue_->now();
  std::uint64_t admitted = 0;
  Status first = Status::Ok();
  for (Packet& packet : packets) {
    if (!InBounds(packet.source) || !InBounds(packet.destination)) {
      // Left uncounted here and re-skipped by the same test at dispatch,
      // so out-of-bounds packets need no per-packet marker.
      if (first.ok()) first = InvalidArgument("packet endpoints outside mesh");
      continue;
    }
    packet.injected_at = now;
    ++admitted;
  }
  telemetry_.injected += admitted;
  if (admitted > 0) {
    owned_bursts_.push_back(std::move(packets));
    queue_->ScheduleTagAfter(TimeNs(0.0), this, kTagOwnedBurstBit);
  }
  return first;
}

Status MeshNoc::SetNodeFailed(NodeId node, bool failed) {
  if (!InBounds(node)) return OutOfRange("node outside mesh");
  nodes_[NodeIndex(node)].failed = failed;
  RecomputeAnyFailure();
  return Status::Ok();
}

Status MeshNoc::SetLinkFailed(NodeId from, Direction dir, bool failed) {
  if (!InBounds(from) || !InBounds(Neighbor(from, dir))) {
    return OutOfRange("link outside mesh");
  }
  links_[LinkIndex(from, dir)].failed = failed;
  RecomputeAnyFailure();
  return Status::Ok();
}

void MeshNoc::RecomputeAnyFailure() {
  any_failure_ = false;
  for (const Node& node : nodes_) any_failure_ = any_failure_ || node.failed;
  for (const Link& link : links_) any_failure_ = any_failure_ || link.failed;
}

bool MeshNoc::IsNodeFailed(NodeId node) const {
  return InBounds(node) && nodes_[NodeIndex(node)].failed;
}

const RunningStat* MeshNoc::StreamLatency(std::uint64_t stream) const {
  const auto it = std::lower_bound(
      stream_latency_.begin(), stream_latency_.end(), stream,
      [](const auto& entry, std::uint64_t id) { return entry.first < id; });
  if (it == stream_latency_.end() || it->first != stream) return nullptr;
  return &it->second;
}

RunningStat& MeshNoc::StreamSlot(std::uint64_t stream) {
  auto it = std::lower_bound(
      stream_latency_.begin(), stream_latency_.end(), stream,
      [](const auto& entry, std::uint64_t id) { return entry.first < id; });
  if (it == stream_latency_.end() || it->first != stream) {
    it = stream_latency_.insert(it, {stream, RunningStat{}});
  }
  return it->second;
}

Expected<Direction> MeshNoc::NextHop(NodeId at, NodeId dst,
                                     bool* rerouted) const {
  *rerouted = false;
  // Dimension-order preference: X first, then Y.
  Direction preferred;
  if (dst.x != at.x) {
    preferred = dst.x > at.x ? Direction::kEast : Direction::kWest;
  } else {
    preferred = dst.y > at.y ? Direction::kNorth : Direction::kSouth;
  }
  const auto usable = [&](Direction dir) {
    const NodeId next = Neighbor(at, dir);
    if (!InBounds(next) || links_[LinkIndex(at, dir)].failed) return false;
    // Avoid routing *through* a dead node; stepping onto a dead final
    // destination is allowed (the drop is charged to the destination).
    if (!(next == dst) && nodes_[NodeIndex(next)].failed) return false;
    return true;
  };
  if (usable(preferred)) return preferred;

  // Single-turn failover: detour along the perpendicular dimension,
  // preferring the direction that makes progress toward the destination.
  std::array<Direction, 3> fallbacks{};
  std::size_t n = 0;
  if (dst.x != at.x) {
    fallbacks[n++] = dst.y >= at.y ? Direction::kNorth : Direction::kSouth;
    fallbacks[n++] = dst.y >= at.y ? Direction::kSouth : Direction::kNorth;
  } else {
    fallbacks[n++] = dst.x >= at.x ? Direction::kEast : Direction::kWest;
    fallbacks[n++] = dst.x >= at.x ? Direction::kWest : Direction::kEast;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (usable(fallbacks[i])) {
      *rerouted = true;
      return fallbacks[i];
    }
  }
  return Unavailable("no usable link toward destination");
}

void MeshNoc::Drop(const Packet& packet, DropReason reason) {
  // Counted unconditionally, before any handler check: a missing handler
  // must never make telemetry lie about conservation.
  ++telemetry_.dropped;
  if (InBounds(packet.destination)) {
    if (DeliverySink* sink = nodes_[NodeIndex(packet.destination)].sink) {
      sink->OnDrop(packet, reason);
    }
  }
  if (on_drop_) on_drop_(packet, reason);
}

void MeshNoc::Deliver(Packet&& packet, int hops) {
  ++telemetry_.delivered;
  const double latency = (queue_->now() - packet.injected_at).ns;
  telemetry_.latency_ns.Add(latency);
  telemetry_.latency_by_class[static_cast<std::size_t>(packet.qos)].Add(
      latency);
  StreamSlot(packet.stream_id).Add(latency);
  const Node& dst = nodes_[NodeIndex(packet.destination)];
  if (dst.sink != nullptr) {
    dst.sink->OnDelivery(Delivery{std::move(packet), queue_->now(), hops});
  } else if (dst.handler) {
    dst.handler(Delivery{std::move(packet), queue_->now(), hops});
  }
}

// --- reference path --------------------------------------------------------

void MeshNoc::ArriveAt(Packet packet, NodeId node, int hops) {
  CIM_DCHECK(InBounds(node));
  if (nodes_[NodeIndex(node)].failed) {
    Drop(packet, DropReason::kNodeFailed);
    return;
  }
  if (node == packet.destination) {
    Deliver(std::move(packet), hops);
    return;
  }
  // Hop cap breaks detour livelock when a region is fully failed.
  const int hop_cap = 4 * params_.width * params_.height;
  if (hops >= hop_cap) {
    Drop(packet, DropReason::kUnroutable);
    return;
  }
  bool rerouted = false;
  auto dir = NextHop(node, packet.destination, &rerouted);
  if (!dir.ok()) {
    Drop(packet, DropReason::kUnroutable);
    return;
  }
  if (rerouted) ++telemetry_.rerouted_hops;
  TraverseLink(std::move(packet), node, *dir, hops);
}

void MeshNoc::TraverseLink(Packet packet, NodeId from, Direction dir,
                           int hops) {
  const std::size_t link_idx = LinkIndex(from, dir);
  Link& link = links_[link_idx];
  link.queues[static_cast<std::size_t>(packet.qos)].push_back(
      std::move(packet));
  link.queued_hops[static_cast<std::size_t>(packet.qos)].push_back(hops);
  if (!link.drain_scheduled) {
    link.drain_scheduled = true;
    const TimeNs when =
        link.busy_until > queue_->now() ? link.busy_until : queue_->now();
    queue_->ScheduleAt(when,
                       [this, link_idx, from, dir] {
                         DrainLink(link_idx, from, dir);
                       });
  }
}

void MeshNoc::DrainLink(std::size_t link_idx, NodeId from, Direction dir) {
  Link& link = links_[link_idx];
  link.drain_scheduled = false;

  // If the link failed while packets were queued, reroute them all.
  if (link.failed) {
    for (int cls = 0; cls < kQosClassCount; ++cls) {
      while (!link.queues[cls].empty()) {
        Packet packet = std::move(link.queues[cls].front());
        link.queues[cls].pop_front();
        const int hops = link.queued_hops[cls].front();
        link.queued_hops[cls].pop_front();
        ArriveAt(std::move(packet), from, hops);
      }
    }
    return;
  }

  // Service the highest-priority non-empty class.
  for (int cls = 0; cls < kQosClassCount; ++cls) {
    if (link.queues[cls].empty()) continue;
    Packet packet = std::move(link.queues[cls].front());
    link.queues[cls].pop_front();
    const int hops = link.queued_hops[cls].front();
    link.queued_hops[cls].pop_front();

    const TimeNs serialization = SerializationDelay(packet.payload_bytes);
    link.busy_until = queue_->now() + serialization;
    telemetry_.cost.energy_pj +=
        params_.hop_energy_per_byte.pj * packet.payload_bytes +
        params_.router_energy.pj;
    telemetry_.cost.bytes_moved += packet.payload_bytes;
    telemetry_.cost.latency_ns += serialization.ns;
    ++telemetry_.cost.operations;

    const NodeId next = Neighbor(from, dir);
    const TimeNs arrival = queue_->now() + params_.router_latency +
                           params_.link_latency + serialization;
    queue_->ScheduleAt(arrival,
                       [this, packet = std::move(packet), next, hops] {
                         ArriveAt(packet, next, hops + 1);
                       });
    break;
  }

  // More traffic pending: schedule the next drain when the link frees.
  bool any_pending = false;
  for (const auto& q : link.queues) {
    if (!q.empty()) any_pending = true;
  }
  if (any_pending) {
    link.drain_scheduled = true;
    queue_->ScheduleAt(link.busy_until, [this, link_idx, from, dir] {
      DrainLink(link_idx, from, dir);
    });
  }
}

// --- flat path -------------------------------------------------------------
//
// Mirrors the reference path decision for decision (same routing calls, same
// telemetry updates, same event times, same relative scheduling order), so
// both produce identical simulations; only the carrier differs — flight
// indices in reusable pool slots instead of Packets captured in closures.

void MeshNoc::OnTagEvent(std::uint64_t tag) {
  if ((tag & kTagDrainBit) != 0) {
    FlatDrain(static_cast<std::size_t>(tag & ~kTagDrainBit));
  } else if ((tag & kTagOwnedBurstBit) != 0) {
    // An owned burst replays its buffer's arrivals in injection order;
    // packets move into flight slots here, at dispatch, so injection
    // itself never copies them. Admission already counted the in-bounds
    // packets and the same bounds test skips the rest.
    std::vector<Packet> burst = std::move(owned_bursts_[owned_cursor_++]);
    if (owned_cursor_ == owned_bursts_.size()) {
      owned_bursts_.clear();
      owned_cursor_ = 0;
    }
    if (flight_free_.size() < burst.size()) {
      flights_.reserve(flights_.size() + burst.size() - flight_free_.size());
    }
    for (Packet& packet : burst) {
      if (!InBounds(packet.source) || !InBounds(packet.destination)) continue;
      const NodeId source = packet.source;
      FlatArrive(AllocFlight(std::move(packet), source, 0));
    }
  } else if ((tag & kTagBurstBit) != 0) {
    // One burst event stands in for `count` individual arrival events;
    // staged flights replay in injection (FIFO) order. Bursts are consumed
    // in schedule order, so the cursor always points at this burst's first
    // flight even when several bursts are pending.
    const std::uint64_t count = tag & ~kTagBurstBit;
    for (std::uint64_t i = 0; i < count; ++i) {
      FlatArrive(burst_staged_[burst_cursor_++]);
    }
    if (burst_cursor_ == burst_staged_.size()) {
      burst_staged_.clear();
      burst_cursor_ = 0;
    }
  } else {
    FlatArrive(static_cast<std::uint32_t>(tag));
  }
}

std::uint32_t MeshNoc::AllocFlight(Packet&& packet, NodeId at, int hops) {
  if (!flight_free_.empty()) {
    const std::uint32_t idx = flight_free_.back();
    flight_free_.pop_back();
    Flight& flight = flights_[idx];
    flight.packet = std::move(packet);
    flight.at = at;
    flight.hops = hops;
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(flights_.size());
  flights_.push_back(Flight{std::move(packet), at, hops});
  return idx;
}

void MeshNoc::FlatArrive(std::uint32_t idx) {
  Flight& flight = flights_[idx];
  const NodeId node = flight.at;
  CIM_DCHECK(InBounds(node));
  if (nodes_[NodeIndex(node)].failed) {
    Drop(flight.packet, DropReason::kNodeFailed);
    FreeFlight(idx);
    return;
  }
  if (node == flight.packet.destination) {
    const int hops = flight.hops;
    Deliver(std::move(flight.packet), hops);
    FreeFlight(idx);
    return;
  }
  const int hop_cap = 4 * params_.width * params_.height;
  if (flight.hops >= hop_cap) {
    Drop(flight.packet, DropReason::kUnroutable);
    FreeFlight(idx);
    return;
  }
  bool rerouted = false;
  auto dir = NextHop(node, flight.packet.destination, &rerouted);
  if (!dir.ok()) {
    Drop(flight.packet, DropReason::kUnroutable);
    FreeFlight(idx);
    return;
  }
  if (rerouted) ++telemetry_.rerouted_hops;
  FlatTraverse(idx, node, *dir);
}

void MeshNoc::FlatTraverse(std::uint32_t idx, NodeId from, Direction dir) {
  const std::size_t link_idx = LinkIndex(from, dir);
  FlatLink& link = flat_links_[link_idx];
  const auto cls = static_cast<std::size_t>(flights_[idx].packet.qos);
  link.queue[cls].push_back(idx);
  if (!link.drain_scheduled) {
    link.drain_scheduled = true;
    const TimeNs when =
        link.busy_until > queue_->now() ? link.busy_until : queue_->now();
    queue_->ScheduleTagAt(when, this, kTagDrainBit | link_idx);
  }
}

void MeshNoc::FlatDrain(std::size_t link_idx) {
  FlatLink& link = flat_links_[link_idx];
  link.drain_scheduled = false;
  const auto node_idx = link_idx / kDirectionCount;
  const NodeId from{static_cast<std::uint16_t>(node_idx % params_.width),
                    static_cast<std::uint16_t>(node_idx / params_.width)};
  const auto dir = static_cast<Direction>(link_idx % kDirectionCount);

  // If the link failed while packets were queued, reroute them all (same
  // order as the reference path: class-ascending, FIFO within class).
  if (links_[link_idx].failed) {
    for (int cls = 0; cls < kQosClassCount; ++cls) {
      // FlatArrive can push onto other links' queues but never this one
      // (NextHop skips failed links), so iterating by index is safe.
      for (std::size_t i = link.head[cls]; i < link.queue[cls].size(); ++i) {
        FlatArrive(link.queue[cls][i]);
      }
      link.queue[cls].clear();
      link.head[cls] = 0;
    }
    return;
  }

  // Service the highest-priority non-empty class.
  for (int cls = 0; cls < kQosClassCount; ++cls) {
    if (link.head[cls] >= link.queue[cls].size()) continue;
    const std::uint32_t idx = link.queue[cls][link.head[cls]++];
    if (link.head[cls] >= link.queue[cls].size()) {
      link.queue[cls].clear();
      link.head[cls] = 0;
    }
    Flight& flight = flights_[idx];

    const TimeNs serialization =
        SerializationDelay(flight.packet.payload_bytes);
    link.busy_until = queue_->now() + serialization;
    telemetry_.cost.energy_pj +=
        params_.hop_energy_per_byte.pj * flight.packet.payload_bytes +
        params_.router_energy.pj;
    telemetry_.cost.bytes_moved += flight.packet.payload_bytes;
    telemetry_.cost.latency_ns += serialization.ns;
    ++telemetry_.cost.operations;

    const TimeNs arrival = queue_->now() + params_.router_latency +
                           params_.link_latency + serialization;
    flight.at = Neighbor(from, dir);
    flight.hops += 1;
    queue_->ScheduleTagAt(arrival, this, idx);
    break;
  }

  bool any_pending = false;
  for (int cls = 0; cls < kQosClassCount; ++cls) {
    if (link.head[cls] < link.queue[cls].size()) any_pending = true;
  }
  if (any_pending) {
    link.drain_scheduled = true;
    queue_->ScheduleTagAt(link.busy_until, this, kTagDrainBit | link_idx);
  }
}

}  // namespace cim::noc
