// Packet-in-flight encryption and authentication (§IV.A).
//
// This is a *link-layer* primitive: it operates on packet payload bytes as
// they cross the mesh, so it lives in the NoC layer; policy-level code and
// the security suite include it from here directly (see
// tools/cimlint/layers.txt for the layering rationale).
//
// SIMULATION NOTE: this models the *cost and plumbing* of link encryption —
// keystream XOR plus a keyed tag — not cryptographic strength. The keystream
// is xoshiro-based and the MAC is a keyed FNV-1a variant; both are
// deterministic, fast, and good enough to demonstrate that tampered or
// differently-keyed traffic is rejected in the simulator. A real system
// would use AES-GCM; the per-byte costs below are in that class.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace cim::noc {

struct CipherCosts {
  // AES-GCM-class hardware pipeline costs.
  EnergyPj energy_per_byte{0.05};
  TimeNs latency_per_byte{0.0625};  // 16 B/cycle at 1 GHz
  TimeNs fixed_latency{10.0};       // key schedule / tag finalization
};

class StreamCipher {
 public:
  StreamCipher(std::uint64_t key, CipherCosts costs = {})
      : key_(key), costs_(costs) {}

  // XOR the buffer with the (key, nonce) keystream, in place. Encryption
  // and decryption are the same operation. Returns the cost of the pass.
  CostReport Apply(std::span<std::uint8_t> data, std::uint64_t nonce) const;

  // Keyed authentication tag over the buffer.
  [[nodiscard]] std::uint32_t Tag(std::span<const std::uint8_t> data,
                                  std::uint64_t nonce) const;

  [[nodiscard]] bool Verify(std::span<const std::uint8_t> data,
                            std::uint64_t nonce, std::uint32_t tag) const {
    return Tag(data, nonce) == tag;
  }

  [[nodiscard]] const CipherCosts& costs() const { return costs_; }

 private:
  std::uint64_t key_;
  CipherCosts costs_;
};

}  // namespace cim::noc
