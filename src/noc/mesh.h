// Event-driven 2-D mesh interconnect with per-class virtual channels,
// dimension-order routing with single-turn failover, link contention and
// full per-stream telemetry.
//
// The model is packet-granular: each hop costs router latency plus link
// serialization at the provisioned bandwidth; a busy link queues packets per
// QoS class and services the highest-priority class first. Links can be
// failed and restored at runtime — the basis of the §IV.B failover and §V.A
// stream-redirection experiments.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/status.h"
#include "noc/packet.h"

namespace cim::noc {

struct MeshParams {
  std::uint16_t width = 4;
  std::uint16_t height = 4;
  double link_bandwidth_gbps = 16.0;  // GB/s per link
  TimeNs router_latency{5.0};         // per-hop pipeline latency
  TimeNs link_latency{2.0};           // wire time-of-flight per hop
  EnergyPj hop_energy_per_byte{1.0};
  EnergyPj router_energy{10.0};       // per packet per hop

  [[nodiscard]] Status Validate() const {
    if (width == 0 || height == 0) return InvalidArgument("empty mesh");
    if (link_bandwidth_gbps <= 0.0) {
      return InvalidArgument("bandwidth must be positive");
    }
    return Status::Ok();
  }
};

enum class Direction : std::uint8_t { kEast = 0, kWest, kNorth, kSouth };
inline constexpr int kDirectionCount = 4;

// Delivery report handed to the receiver's callback.
struct Delivery {
  Packet packet;
  TimeNs delivered_at{0.0};
  int hops = 0;
};

// Why a packet never arrived.
enum class DropReason : std::uint8_t {
  kUnroutable = 0,  // all candidate links at some hop were failed
  kNodeFailed,      // destination node marked failed
};

struct NocTelemetry {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rerouted_hops = 0;  // hops taken off the XY path
  CostReport cost;
  RunningStat latency_ns;
  // Per-QoS latency, indexed by QosClass.
  std::array<RunningStat, kQosClassCount> latency_by_class;
};

class MeshNoc {
 public:
  using DeliveryHandler = std::function<void(const Delivery&)>;
  using DropHandler = std::function<void(const Packet&, DropReason)>;

  [[nodiscard]] static Expected<MeshNoc> Create(const MeshParams& params,
                                                EventQueue* queue);

  [[nodiscard]] const MeshParams& params() const { return params_; }

  // Receiver registration. A node without a handler silently consumes.
  void SetDeliveryHandler(NodeId node, DeliveryHandler handler);
  void SetDropHandler(DropHandler handler) { on_drop_ = std::move(handler); }

  // Inject a packet at its source at the current simulated time.
  Status Inject(Packet packet);

  // Fault hooks: fail/restore a node or one directed link.
  Status SetNodeFailed(NodeId node, bool failed);
  Status SetLinkFailed(NodeId from, Direction dir, bool failed);
  [[nodiscard]] bool IsNodeFailed(NodeId node) const;

  [[nodiscard]] const NocTelemetry& telemetry() const { return telemetry_; }
  // Per-stream latency stats.
  [[nodiscard]] const RunningStat* StreamLatency(std::uint64_t stream) const;

 private:
  struct Link {
    bool failed = false;
    TimeNs busy_until{0.0};
    // One queue per QoS class, serviced highest priority first.
    std::array<std::deque<Packet>, kQosClassCount> queues;
    std::array<std::deque<int>, kQosClassCount> queued_hops;
    bool drain_scheduled = false;
  };
  struct Node {
    bool failed = false;
    DeliveryHandler handler;
  };

  MeshNoc(const MeshParams& params, EventQueue* queue);

  [[nodiscard]] std::size_t NodeIndex(NodeId n) const {
    return static_cast<std::size_t>(n.y) * params_.width + n.x;
  }
  [[nodiscard]] bool InBounds(NodeId n) const {
    return n.x < params_.width && n.y < params_.height;
  }
  [[nodiscard]] std::size_t LinkIndex(NodeId from, Direction dir) const {
    return NodeIndex(from) * kDirectionCount + static_cast<std::size_t>(dir);
  }
  [[nodiscard]] static NodeId Neighbor(NodeId n, Direction dir);

  [[nodiscard]] TimeNs SerializationDelay(std::uint32_t bytes) const {
    return TimeNs(static_cast<double>(bytes) / params_.link_bandwidth_gbps);
  }

  // Route one hop: returns the direction to take from `at` toward `dst`,
  // preferring X-then-Y but detouring when the preferred link is failed.
  // rerouted is set when the fallback was used.
  [[nodiscard]] Expected<Direction> NextHop(NodeId at, NodeId dst,
                                            bool* rerouted) const;

  void ArriveAt(Packet packet, NodeId node, int hops);
  void TraverseLink(Packet packet, NodeId from, Direction dir, int hops);
  void StartTransmission(std::size_t link_idx, NodeId from, Direction dir,
                         Packet packet, int hops);
  void DrainLink(std::size_t link_idx, NodeId from, Direction dir);
  void Drop(const Packet& packet, DropReason reason);

  MeshParams params_;
  EventQueue* queue_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  DropHandler on_drop_;
  NocTelemetry telemetry_;
  std::unordered_map<std::uint64_t, RunningStat> stream_latency_;
};

}  // namespace cim::noc
