// Event-driven 2-D mesh interconnect with per-class virtual channels,
// dimension-order routing with single-turn failover, link contention and
// full per-stream telemetry.
//
// The model is packet-granular: each hop costs router latency plus link
// serialization at the provisioned bandwidth; a busy link queues packets per
// QoS class and services the highest-priority class first. Links can be
// failed and restored at runtime — the basis of the §IV.B failover and §V.A
// stream-redirection experiments.
//
// Two injection-path implementations share the routing, arbitration and
// telemetry logic (NocPath below): the reference path carries each Packet
// through per-hop closures, the flat path carries a 32-bit index into a
// pooled flight table through tagged events. Results are bit-identical; the
// flat path is what lets fabric-scale co-simulation push millions of packets
// per run (see bench_fabric_cosim).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/status.h"
#include "noc/packet.h"

namespace cim::noc {

// Injection-path policy (same shape as crossbar::KernelPolicy): kReference
// keeps the original closure-per-hop / deque-of-Packet implementation as the
// golden model; kFlat (the default) is the SoA hot path — pooled flight
// slots, per-link index queues, allocation-free tagged events, batched heap
// reservation. Both paths draw events from one (when, sequence) order, so
// deliveries, drops, timestamps and telemetry are bit-identical — pinned by
// the noc_test differential suite and re-checked by bench_fabric_cosim.
enum class NocPath : std::uint8_t {
  kReference = 0,
  kFlat = 1,
};

struct MeshParams {
  std::uint16_t width = 4;
  std::uint16_t height = 4;
  double link_bandwidth_gbps = 16.0;  // GB/s per link
  TimeNs router_latency{5.0};         // per-hop pipeline latency
  TimeNs link_latency{2.0};           // wire time-of-flight per hop
  EnergyPj hop_energy_per_byte{1.0};
  EnergyPj router_energy{10.0};       // per packet per hop
  NocPath path = NocPath::kFlat;

  [[nodiscard]] Status Validate() const {
    if (width == 0 || height == 0) return InvalidArgument("empty mesh");
    if (link_bandwidth_gbps <= 0.0) {
      return InvalidArgument("bandwidth must be positive");
    }
    return Status::Ok();
  }
};

enum class Direction : std::uint8_t { kEast = 0, kWest, kNorth, kSouth };
inline constexpr int kDirectionCount = 4;

// Delivery report handed to the receiver's callback.
struct Delivery {
  Packet packet;
  TimeNs delivered_at{0.0};
  int hops = 0;
};

// Why a packet never arrived.
enum class DropReason : std::uint8_t {
  kUnroutable = 0,  // all candidate links at some hop were failed
  kNodeFailed,      // destination node marked failed
};

// Allocation-free receiver for fabric-scale consumers: one object serves
// many nodes and decodes the packet itself, instead of binding a
// std::function per node. When both a sink and a handler are registered for
// a node, the sink wins. OnDrop is routed to the *destination* node's sink
// (the consumer that was waiting for the packet), for drops anywhere along
// the route.
class DeliverySink {
 public:
  virtual void OnDelivery(Delivery&& delivery) = 0;
  virtual void OnDrop(const Packet& packet, DropReason reason) = 0;

 protected:
  ~DeliverySink() = default;
};

struct NocTelemetry {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rerouted_hops = 0;  // hops taken off the XY path
  CostReport cost;
  RunningStat latency_ns;
  // Per-QoS latency, indexed by QosClass.
  std::array<RunningStat, kQosClassCount> latency_by_class;
};

class MeshNoc : public EventQueue::TagHandler {
 public:
  using DeliveryHandler = std::function<void(const Delivery&)>;
  using DropHandler = std::function<void(const Packet&, DropReason)>;

  [[nodiscard]] static Expected<MeshNoc> Create(const MeshParams& params,
                                                EventQueue* queue);

  [[nodiscard]] const MeshParams& params() const { return params_; }

  // Receiver registration. A node without a handler or sink silently
  // consumes. The sink must outlive the mesh (raw pointer; pass nullptr to
  // unregister).
  void SetDeliveryHandler(NodeId node, DeliveryHandler handler);
  void SetDeliverySink(NodeId node, DeliverySink* sink);
  void SetDropHandler(DropHandler handler) { on_drop_ = std::move(handler); }

  // Inject a packet at its source at the current simulated time. Faults
  // detectable at the source are reported immediately:
  //   endpoints outside the mesh  -> kInvalidArgument, not counted
  //   source node failed          -> kUnavailable, not counted (the packet
  //                                  never entered the network)
  //   destination node failed     -> kUnavailable; counted injected AND
  //                                  dropped (DropReason::kNodeFailed), so
  //                                  injected == delivered + dropped holds
  //   no usable link at source    -> kFailedPrecondition; counted injected
  //                                  AND dropped (DropReason::kUnroutable)
  // Faults that develop mid-route surface through the drop handler/sink
  // only. Every drop is counted in NocTelemetry whether or not a handler is
  // registered.
  [[nodiscard]] Status Inject(Packet packet);

  // Batched injection for epoch-barrier producers: reserves event-heap and
  // flight-pool space once, then injects in span order (packets are
  // consumed). On the flat path the whole burst is staged into flight slots
  // behind a single tagged event whose dispatch replays the arrivals in
  // injection order — identical processing order/times/decisions to N
  // per-packet events at a fraction of the insertion cost. Per-packet drops
  // are individually accounted as in Inject; the first non-ok status is
  // returned after the whole span is processed.
  [[nodiscard]] Status InjectBurst(std::span<Packet> packets);

  // Zero-copy burst: takes the caller's buffer wholesale. On the healthy
  // flat path admission is just bounds checks + timestamps — packets move
  // into flight slots at dispatch, not at injection — so the injection
  // path is O(n) validation plus one event for the whole burst. Faulted
  // meshes and the reference path fall back to the span overload.
  // Epoch-barrier producers that mint a fresh packet vector per exchange
  // (fabric::FabricCoSim) should prefer this form.
  [[nodiscard]] Status InjectBurst(std::vector<Packet>&& packets);

  // Fault hooks: fail/restore a node or one directed link.
  Status SetNodeFailed(NodeId node, bool failed);
  Status SetLinkFailed(NodeId from, Direction dir, bool failed);
  [[nodiscard]] bool IsNodeFailed(NodeId node) const;

  [[nodiscard]] const NocTelemetry& telemetry() const { return telemetry_; }
  // Per-stream latency stats.
  [[nodiscard]] const RunningStat* StreamLatency(std::uint64_t stream) const;
  // All per-stream stats, sorted by stream id — deterministic and
  // byte-stable to iterate for telemetry dumps (never hash order).
  [[nodiscard]] std::span<const std::pair<std::uint64_t, RunningStat>>
  stream_latencies() const {
    return stream_latency_;
  }

 private:
  struct Link {
    bool failed = false;
    TimeNs busy_until{0.0};
    // One queue per QoS class, serviced highest priority first
    // (reference path only; the flat path queues indices in FlatLink).
    std::array<std::deque<Packet>, kQosClassCount> queues;
    std::array<std::deque<int>, kQosClassCount> queued_hops;
    bool drain_scheduled = false;
  };
  struct Node {
    bool failed = false;
    DeliveryHandler handler;
    DeliverySink* sink = nullptr;
  };

  // --- flat-path state: a packet in flight owns one pooled slot; link
  // queues and events carry the 32-bit slot index instead of the Packet.
  struct Flight {
    Packet packet;
    NodeId at;      // node the packet is arriving at / queued to leave from
    int hops = 0;
  };
  struct FlatLink {
    TimeNs busy_until{0.0};
    bool drain_scheduled = false;
    // Index queues per QoS class; head is the pop cursor and the vector is
    // compacted when it empties, so steady state never reallocates.
    std::array<std::vector<std::uint32_t>, kQosClassCount> queue;
    std::array<std::size_t, kQosClassCount> head{};
  };
  // Tag encoding for EventQueue::TagHandler dispatch: drain events set the
  // top bit and carry the link index; staged-burst events set bit 62 and
  // carry the staged-arrival count; owned-burst events set bit 61 (bursts
  // are consumed FIFO); bare tags are single-flight arrival slots.
  static constexpr std::uint64_t kTagDrainBit = 1ULL << 63;
  static constexpr std::uint64_t kTagBurstBit = 1ULL << 62;
  static constexpr std::uint64_t kTagOwnedBurstBit = 1ULL << 61;

  MeshNoc(const MeshParams& params, EventQueue* queue);

  [[nodiscard]] std::size_t NodeIndex(NodeId n) const {
    return static_cast<std::size_t>(n.y) * params_.width + n.x;
  }
  [[nodiscard]] bool InBounds(NodeId n) const {
    return n.x < params_.width && n.y < params_.height;
  }
  [[nodiscard]] std::size_t LinkIndex(NodeId from, Direction dir) const {
    return NodeIndex(from) * kDirectionCount + static_cast<std::size_t>(dir);
  }
  [[nodiscard]] static NodeId Neighbor(NodeId n, Direction dir);

  [[nodiscard]] TimeNs SerializationDelay(std::uint32_t bytes) const {
    return TimeNs(static_cast<double>(bytes) / params_.link_bandwidth_gbps);
  }

  // Route one hop: returns the direction to take from `at` toward `dst`,
  // preferring X-then-Y but detouring when the preferred link is failed.
  // rerouted is set when the fallback was used.
  [[nodiscard]] Expected<Direction> NextHop(NodeId at, NodeId dst,
                                            bool* rerouted) const;

  // Shared delivery/drop bookkeeping (both paths).
  void Deliver(Packet&& packet, int hops);
  void Drop(const Packet& packet, DropReason reason);
  RunningStat& StreamSlot(std::uint64_t stream);
  // Validation + injected/drop accounting shared by Inject and InjectBurst;
  // on Ok the packet is stamped, counted and cleared to enter the network.
  [[nodiscard]] Status AdmitPacket(Packet& packet);
  void RecomputeAnyFailure();

  // Reference path.
  void ArriveAt(Packet packet, NodeId node, int hops);
  void TraverseLink(Packet packet, NodeId from, Direction dir, int hops);
  void DrainLink(std::size_t link_idx, NodeId from, Direction dir);

  // Flat path.
  void OnTagEvent(std::uint64_t tag) override;
  std::uint32_t AllocFlight(Packet&& packet, NodeId at, int hops);
  void FreeFlight(std::uint32_t idx) { flight_free_.push_back(idx); }
  void FlatArrive(std::uint32_t idx);
  void FlatTraverse(std::uint32_t idx, NodeId from, Direction dir);
  void FlatDrain(std::size_t link_idx);

  MeshParams params_;
  EventQueue* queue_;
  std::vector<Node> nodes_;
  // Link fault flags live in links_ for both paths; the reference packet
  // queues inside are unused when params_.path == kFlat.
  std::vector<Link> links_;
  std::vector<FlatLink> flat_links_;
  std::vector<Flight> flights_;
  std::vector<std::uint32_t> flight_free_;
  // Flights staged by InjectBurst, consumed FIFO by their burst tag event.
  std::vector<std::uint32_t> burst_staged_;
  std::size_t burst_cursor_ = 0;
  // Whole buffers handed over by the owned InjectBurst, consumed FIFO.
  std::vector<std::vector<Packet>> owned_bursts_;
  std::size_t owned_cursor_ = 0;
  // True iff any node or link is currently failed; lets the healthy
  // injection path skip its fault probes (see AdmitPacket).
  bool any_failure_ = false;
  DropHandler on_drop_;
  NocTelemetry telemetry_;
  // Sorted by stream id (binary-search insert): deterministic iteration,
  // nothing for the unordered-iteration lint rule to flag.
  std::vector<std::pair<std::uint64_t, RunningStat>> stream_latency_;
};

}  // namespace cim::noc
