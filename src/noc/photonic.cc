#include "noc/photonic.h"

namespace cim::noc {

Expected<LinkTransfer> ElectricalLinkParams::Transfer(
    double bytes, double distance_cm) const {
  if (bytes < 0.0 || distance_cm < 0.0) {
    return InvalidArgument("negative transfer");
  }
  if (distance_cm > max_reach_cm) {
    return OutOfRange("electrical link beyond usable reach");
  }
  const double bits = bytes * 8.0;
  LinkTransfer t;
  // Bandwidth derates linearly to 25% at max reach (equalization limits).
  const double derate = 1.0 - 0.75 * (distance_cm / max_reach_cm);
  t.effective_bandwidth_gbps = bandwidth_gbps * derate;
  t.latency_ns = distance_cm * propagation_ns_per_cm +
                 bytes / t.effective_bandwidth_gbps;
  t.energy_pj = bits * (base_energy_pj_per_bit +
                        energy_pj_per_bit_per_cm * distance_cm);
  return t;
}

Expected<LinkTransfer> PhotonicLinkParams::Transfer(
    double bytes, double distance_cm) const {
  if (bytes < 0.0 || distance_cm < 0.0) {
    return InvalidArgument("negative transfer");
  }
  const double bits = bytes * 8.0;
  LinkTransfer t;
  t.effective_bandwidth_gbps = bandwidth_gbps;
  t.latency_ns = conversion_latency_ns +
                 distance_cm * propagation_ns_per_cm +
                 bytes / bandwidth_gbps;
  t.energy_pj = bits * energy_pj_per_bit;  // flat in distance
  return t;
}

double PhotonicCrossoverCm(const ElectricalLinkParams& e,
                           const PhotonicLinkParams& p) {
  // Solve base + k*d == p.energy_pj_per_bit for d.
  if (e.energy_pj_per_bit_per_cm <= 0.0) return 0.0;
  const double d = (p.energy_pj_per_bit - e.base_energy_pj_per_bit) /
                   e.energy_pj_per_bit_per_cm;
  return d > 0.0 ? d : 0.0;
}

}  // namespace cim::noc
