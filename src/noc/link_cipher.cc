#include "noc/link_cipher.h"

namespace cim::noc {

CostReport StreamCipher::Apply(std::span<std::uint8_t> data,
                               std::uint64_t nonce) const {
  Rng keystream(key_ ^ (nonce * 0x9e3779b97f4a7c15ULL));
  std::size_t i = 0;
  while (i < data.size()) {
    std::uint64_t word = keystream.NextU64();
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(word & 0xFF);
      word >>= 8;
    }
  }
  CostReport cost;
  cost.latency_ns = costs_.fixed_latency.ns +
                    costs_.latency_per_byte.ns *
                        static_cast<double>(data.size());
  cost.energy_pj =
      costs_.energy_per_byte.pj * static_cast<double>(data.size());
  cost.operations = data.size();
  return cost;
}

std::uint32_t StreamCipher::Tag(std::span<const std::uint8_t> data,
                                std::uint64_t nonce) const {
  // Keyed FNV-1a over (key, nonce, data), folded to 32 bits.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key_;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(nonce);
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace cim::noc
