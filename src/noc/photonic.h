// Photonic interconnect model (§II.A: "photonics interconnects grow in
// importance, since they enable communications from centimeters to
// kilometers at the same energy per bit, varying only in the time of
// flight").
//
// Two point-to-point link models share an interface: an electrical link
// whose energy per bit grows with distance (wire charging) and degrades in
// bandwidth over long spans, and a photonic link whose energy per bit is
// flat in distance (laser + modulation + detection, paid per bit) plus a
// fixed electro-optic conversion tax, with only time-of-flight varying.
// The crossover distance is the quantitative content of the paper's claim.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace cim::noc {

struct LinkTransfer {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  double effective_bandwidth_gbps = 0.0;
};

struct ElectricalLinkParams {
  // On-board copper: ~1 pJ/bit at 5 cm, growing linearly with distance
  // (repeater/charging energy), and usable bandwidth falling off beyond
  // tens of centimeters.
  double energy_pj_per_bit_per_cm = 0.2;
  double base_energy_pj_per_bit = 0.5;
  double bandwidth_gbps = 50.0;       // short-reach
  double max_reach_cm = 500.0;        // beyond this, unusable
  double propagation_ns_per_cm = 0.05;  // ~2/3 c in copper

  [[nodiscard]] Expected<LinkTransfer> Transfer(double bytes,
                                                double distance_cm) const;
};

struct PhotonicLinkParams {
  // Silicon-photonics class: flat pJ/bit regardless of distance.
  double energy_pj_per_bit = 1.0;       // laser + modulator + detector
  double conversion_latency_ns = 5.0;   // E/O + O/E
  double bandwidth_gbps = 100.0;        // per wavelength x WDM
  double propagation_ns_per_cm = 0.049; // c in fiber (n ~ 1.45)

  [[nodiscard]] Expected<LinkTransfer> Transfer(double bytes,
                                                double distance_cm) const;
};

// The distance beyond which the photonic link costs less energy per bit
// than the electrical one (closed form from the linear models).
[[nodiscard]] double PhotonicCrossoverCm(const ElectricalLinkParams& e,
                                         const PhotonicLinkParams& p);

}  // namespace cim::noc
