// Byte-stable JSON artifact for a completed sweep.
//
// The artifact is the bench's recorded output (BENCH_PR10.json) and the
// payload of the check.sh two-run replay gate: two runs of the same sweep
// must serialize to byte-identical strings. That forces the writer's rules:
// fixed field order, fixed float formatting (snprintf with explicit
// precision), no wall-clock values, no pointers, no locale dependence.
// docs/DSE.md documents the schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/driver.h"
#include "dse/spec.h"

namespace cim::dse {

struct SweepArtifact {
  std::string mode;  // "smoke" or "full"
  std::uint64_t seed = 0;
  std::size_t fault_cells = 0;
  SweepSpec spec;
  WorkloadParams workload;
  std::string network_name;
  std::vector<PointResult> results;          // canonical grid order
  std::vector<std::size_t> pareto_indices;   // ascending grid indices
};

// Assemble the artifact from a driver and its completed run; the Pareto
// front is extracted here so every artifact carries it.
[[nodiscard]] SweepArtifact MakeArtifact(const std::string& mode,
                                         const SweepSpec& spec,
                                         const SweepDriver& driver,
                                         std::vector<PointResult> results);

// Serialize with the byte-stability rules above. Ends in a newline.
[[nodiscard]] std::string WriteSweepJson(const SweepArtifact& artifact);

}  // namespace cim::dse
