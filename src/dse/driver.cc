#include "dse/driver.h"

#include <span>
#include <utility>
#include <variant>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dpe/accelerator.h"
#include "dpe/analytical.h"
#include "dpe/area.h"
#include "nn/dataset.h"

namespace cim::dse {
namespace {

// Sub-stream indices under the sweep root / point seed. Named so the
// derivation map is auditable in one place (docs/DSE.md documents it).
constexpr std::uint64_t kWorkloadNetStream = 0;
constexpr std::uint64_t kWorkloadDataStream = 1;
constexpr std::uint64_t kPointProgramStream = 0;
constexpr std::uint64_t kPointFaultStream = 1;

std::size_t ArgMax(std::span<const double> v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace

Status WorkloadParams::Validate() const {
  if (widths.size() < 2) return InvalidArgument("widths needs >= 2 entries");
  for (std::size_t w : widths) {
    if (w == 0) return InvalidArgument("widths entries must be > 0");
  }
  if (classes < 2 || widths.back() != classes) {
    return InvalidArgument("widths must end in `classes` output features");
  }
  if (eval_samples == 0) return InvalidArgument("eval_samples == 0");
  if (weight_scale <= 0.0 || cluster_spread <= 0.0) {
    return InvalidArgument("weight_scale and cluster_spread must be > 0");
  }
  return Status::Ok();
}

Expected<SweepWorkload> SweepWorkload::Make(const WorkloadParams& p,
                                            std::uint64_t seed) {
  if (Status s = p.Validate(); !s.ok()) return s;
  SweepWorkload w;
  w.app_class = p.app_class;

  Rng net_rng(DeriveSeed(seed, kWorkloadNetStream));
  w.net = nn::BuildMlp("dse-sweep-mlp", p.widths, net_rng, p.weight_scale);

  nn::DatasetParams dp;
  dp.dim = p.widths.front();
  dp.classes = p.classes;
  dp.samples_per_class =
      (p.eval_samples + p.classes - 1) / p.classes;  // ceil: >= one per class
  dp.cluster_spread = p.cluster_spread;
  Rng data_rng(DeriveSeed(seed, kWorkloadDataStream));
  auto data = nn::MakeClusterDataset(dp, data_rng);
  if (!data.ok()) return data.status();

  // The dataset is grouped by class; pick eval samples round-robin across
  // classes so every class is represented even for small eval_samples.
  w.inputs.reserve(p.eval_samples);
  w.golden_top1.reserve(p.eval_samples);
  for (std::size_t i = 0; i < p.eval_samples; ++i) {
    const std::size_t cls = i % p.classes;
    const std::size_t within = i / p.classes;
    const std::size_t idx = cls * dp.samples_per_class + within;
    nn::Tensor input({dp.dim});
    input.vec() = data->samples[idx];
    auto golden = nn::Forward(w.net, input);
    if (!golden.ok()) return golden.status();
    w.golden_top1.push_back(ArgMax(golden->vec()));
    w.inputs.push_back(std::move(input));
  }
  return w;
}

Status DriverParams::Validate() const {
  if (Status s = base.Validate(); !s.ok()) return s;
  return workload.Validate();
}

Expected<std::unique_ptr<SweepDriver>> SweepDriver::Create(
    const DriverParams& params) {
  if (Status s = params.Validate(); !s.ok()) return s;
  auto workload = SweepWorkload::Make(params.workload, params.seed);
  if (!workload.ok()) return workload.status();
  return std::unique_ptr<SweepDriver>(
      new SweepDriver(params, *std::move(workload)));
}

Expected<PointResult> SweepDriver::EvaluatePoint(
    const DesignPoint& point) const {
  const dpe::DpeParams dpe_params = point.ToDpeParams(params_.base);
  const std::uint64_t point_seed = DeriveSeed(params_.seed, point.index);

  // The point's accelerator plus its noise-free twin: identical
  // configuration, programming stream, and injected faults, with only the
  // read-noise sigma zeroed. The twin's outputs are the reference for
  // noise_self_agreement.
  dpe::DpeParams quiet_params = dpe_params;
  quiet_params.array.cell.read_noise_sigma = 0.0;
  auto acc = dpe::DpeAccelerator::Create(
      dpe_params, workload_.net,
      Rng(DeriveSeed(point_seed, kPointProgramStream)));
  if (!acc.ok()) return acc.status();
  auto quiet = dpe::DpeAccelerator::Create(
      quiet_params, workload_.net,
      Rng(DeriveSeed(point_seed, kPointProgramStream)));
  if (!quiet.ok()) return quiet.status();

  if (params_.fault_cells > 0) {
    // Stuck-on cells in the first (largest) layer, at positions derived
    // from the point seed — identical across re-runs, independent across
    // points. Configurations without fault tolerance eat the corruption;
    // configurations with spares detect and recover, which is what makes
    // the spare-tiles axis trade area for accuracy.
    const auto& first = std::get<nn::DenseLayer>(workload_.net.layers.front());
    for (dpe::DpeAccelerator* target : {acc->get(), quiet->get()}) {
      Rng fault_rng(DeriveSeed(point_seed, kPointFaultStream));
      for (std::size_t f = 0; f < params_.fault_cells; ++f) {
        const auto row =
            static_cast<std::size_t>(fault_rng.NextBounded(first.in_features));
        const auto col = static_cast<std::size_t>(
            fault_rng.NextBounded(first.out_features));
        if (Status s = target->InjectFault(0, row, col,
                                           device::CellFault::kStuckOn, 0,
                                           dpe::DpeAccelerator::kAllSlices);
            !s.ok()) {
          return s;
        }
      }
    }
  }

  PointResult result;
  result.point = point;

  std::size_t golden_agree = 0;
  std::size_t self_agree = 0;
  for (std::size_t i = 0; i < workload_.inputs.size(); ++i) {
    auto inferred = (*acc)->Infer(workload_.inputs[i]);
    if (!inferred.ok()) return inferred.status();
    auto quiet_inferred = (*quiet)->Infer(workload_.inputs[i]);
    if (!quiet_inferred.ok()) return quiet_inferred.status();
    const std::size_t noisy_top1 = ArgMax(inferred->output.vec());
    if (noisy_top1 == workload_.golden_top1[i]) ++golden_agree;
    if (noisy_top1 == ArgMax(quiet_inferred->output.vec())) ++self_agree;
  }
  const auto samples = static_cast<double>(workload_.inputs.size());
  result.objectives.accuracy = static_cast<double>(golden_agree) / samples;
  result.noise_self_agreement = static_cast<double>(self_agree) / samples;
  result.faults_detected = (*acc)->recovery_stats().detected;
  result.faults_degraded = (*acc)->recovery_stats().degraded;

  dpe::AnalyticalDpeModel model(dpe_params);
  auto estimate = model.EstimateInference(workload_.net);
  if (!estimate.ok()) return estimate.status();
  result.objectives.latency_ns = estimate->latency_ns;
  result.objectives.energy_pj = estimate->energy_pj;

  // Provisioned spare tiles occupy silicon whether or not a fault ever
  // lands on them: 2 differential planes x slices arrays per spare tile.
  const std::size_t spare_arrays =
      point.spare_tiles * 2 * static_cast<std::size_t>(dpe_params.slices());
  result.arrays_used = estimate->arrays_used + spare_arrays;
  dpe::AreaModel area({}, dpe_params);
  result.array_area_um2 = area.ArrayAreaUm2();
  result.objectives.area_mm2 = area.ChipAreaMm2(result.arrays_used);
  return result;
}

Expected<std::vector<PointResult>> SweepDriver::Run(
    const SweepSpec& spec) const {
  auto points = ExpandGrid(spec, params_.base);
  if (!points.ok()) return points.status();

  const std::size_t n = points->size();
  std::vector<PointResult> results(n);
  std::vector<Status> statuses(n, Status::Ok());
  const auto eval = [&](std::size_t i) {
    auto r = EvaluatePoint((*points)[i]);
    if (r.ok()) {
      results[i] = *std::move(r);
    } else {
      statuses[i] = r.status();
    }
  };

  std::size_t threads = params_.worker_threads == 0 ? HardwareConcurrency()
                                                    : params_.worker_threads;
  if (threads > n) threads = n;
  if (threads <= 1 || ThreadPool::InParallelRegion()) {
    for (std::size_t i = 0; i < n; ++i) eval(i);
  } else {
    // Caller participates, so `threads - 1` background workers gives the
    // requested total concurrency (same convention as DpeAccelerator).
    ThreadPool pool(threads - 1);
    pool.ParallelFor(n, eval);
  }

  // First error in grid order wins, independent of evaluation order.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return results;
}

std::vector<Objectives> ObjectivesOf(const std::vector<PointResult>& results) {
  std::vector<Objectives> objectives;
  objectives.reserve(results.size());
  for (const PointResult& r : results) objectives.push_back(r.objectives);
  return objectives;
}

}  // namespace cim::dse
