// Pareto-frontier extraction over the four sweep objectives.
//
// The DSE harness scores every design point on {accuracy, latency, energy,
// area}. Accuracy is maximized; the three costs are minimized. A point
// dominates another when it is at least as good on every objective and
// strictly better on at least one; the Pareto front is the set of points no
// other point dominates — the "design quality of the frontier" the bench
// artifact records.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cim::dse {

struct Objectives {
  double accuracy = 0.0;    // maximize (top-1 agreement fraction in [0, 1])
  double latency_ns = 0.0;  // minimize
  double energy_pj = 0.0;   // minimize
  double area_mm2 = 0.0;    // minimize
};

// True when `a` is at least as good as `b` on every objective and strictly
// better on at least one. Ties on all four objectives dominate in neither
// direction, so duplicate-score points all stay on the front.
[[nodiscard]] bool Dominates(const Objectives& a, const Objectives& b);

// Indices of the non-dominated points, ascending. O(n^2) pairwise scan —
// sweep grids are hundreds of points, not millions.
[[nodiscard]] std::vector<std::size_t> ParetoFrontIndices(
    std::span<const Objectives> points);

}  // namespace cim::dse
