#include "dse/spec.h"

#include <cstdio>

namespace cim::dse {
namespace {

// Effective length of an axis: an empty axis contributes one point (the
// base configuration's value).
template <typename T>
std::size_t AxisLen(const std::vector<T>& axis) {
  return axis.empty() ? 1 : axis.size();
}

template <typename T>
T AxisValue(const std::vector<T>& axis, std::size_t i, T base_value) {
  return axis.empty() ? base_value : axis[i];
}

}  // namespace

Status SweepSpec::Validate() const {
  for (std::size_t size : crossbar_sizes) {
    if (size == 0 || size > 4096) {
      return InvalidArgument("crossbar_sizes entries must be in [1, 4096]");
    }
  }
  for (int bits : adc_bits) {
    if (bits < 1 || bits > 16) {
      return InvalidArgument("adc_bits entries must be in [1, 16]");
    }
  }
  for (int bits : cell_bits) {
    if (bits < 1 || bits > 8) {
      return InvalidArgument("cell_bits entries must be in [1, 8]");
    }
  }
  for (double sigma : noise_sigmas) {
    if (sigma < 0.0 || sigma > 1.0) {
      return InvalidArgument("noise_sigmas entries must be in [0, 1]");
    }
  }
  if (PointCount() == 0) return InvalidArgument("empty sweep grid");
  return Status::Ok();
}

std::size_t SweepSpec::PointCount() const {
  return AxisLen(crossbar_sizes) * AxisLen(adc_bits) * AxisLen(cell_bits) *
         AxisLen(spare_tiles) * AxisLen(noise_sigmas) * AxisLen(kernels);
}

SweepSpec SweepSpec::Smoke() {
  SweepSpec spec;
  spec.crossbar_sizes = {32, 64};
  spec.adc_bits = {6, 8};
  spec.cell_bits = {2};
  spec.spare_tiles = {0};
  spec.noise_sigmas = {0.0, 0.05, 0.2};
  spec.kernels = {device::KernelPolicy::kFastNoise};
  return spec;
}

SweepSpec SweepSpec::Full() {
  SweepSpec spec;
  spec.crossbar_sizes = {32, 64, 128};
  spec.adc_bits = {6, 7, 8};
  spec.cell_bits = {2, 4};
  spec.spare_tiles = {0, 2};
  spec.noise_sigmas = {0.0, 0.02, 0.05, 0.1, 0.2};
  spec.kernels = {device::KernelPolicy::kFastNoise};
  return spec;
}

dpe::DpeParams DesignPoint::ToDpeParams(const dpe::DpeParams& base) const {
  dpe::DpeParams p = base;
  p.array.rows = crossbar_size;
  p.array.cols = crossbar_size;
  p.array.columns_per_adc = crossbar_size;
  p.array.adc.bits = adc_bits;
  p.array.cell.cell_bits = cell_bits;
  p.array.cell.read_noise_sigma = noise_sigma;
  p.array.kernel = kernel;
  p.fault_tolerance.enabled = spare_tiles > 0;
  p.fault_tolerance.spare_tiles = spare_tiles;
  p.worker_threads = 1;  // the sweep parallelizes across points, not inside
  return p;
}

std::string DesignPoint::Label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "xb%zu_adc%d_cell%d_sp%zu_sg%.3f_",
                crossbar_size, adc_bits, cell_bits, spare_tiles, noise_sigma);
  return std::string(buf) + device::KernelPolicyName(kernel);
}

Expected<std::vector<DesignPoint>> ExpandGrid(const SweepSpec& spec,
                                              const dpe::DpeParams& base) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  if (Status s = base.Validate(); !s.ok()) return s;
  std::vector<DesignPoint> points;
  points.reserve(spec.PointCount());
  // Row-major: crossbar_sizes outermost, kernels innermost. The resulting
  // index is the point's identity for seed derivation, so this order is
  // part of the artifact contract (docs/DSE.md).
  for (std::size_t a = 0; a < AxisLen(spec.crossbar_sizes); ++a) {
    for (std::size_t b = 0; b < AxisLen(spec.adc_bits); ++b) {
      for (std::size_t c = 0; c < AxisLen(spec.cell_bits); ++c) {
        for (std::size_t d = 0; d < AxisLen(spec.spare_tiles); ++d) {
          for (std::size_t e = 0; e < AxisLen(spec.noise_sigmas); ++e) {
            for (std::size_t f = 0; f < AxisLen(spec.kernels); ++f) {
              DesignPoint point;
              point.index = points.size();
              point.crossbar_size = AxisValue(spec.crossbar_sizes, a,
                                              base.array.rows);
              point.adc_bits = AxisValue(spec.adc_bits, b, base.array.adc.bits);
              point.cell_bits =
                  AxisValue(spec.cell_bits, c, base.array.cell.cell_bits);
              point.spare_tiles = AxisValue(spec.spare_tiles, d,
                                            base.fault_tolerance.spare_tiles);
              point.noise_sigma = AxisValue(spec.noise_sigmas, e,
                                            base.array.cell.read_noise_sigma);
              point.kernel = AxisValue(spec.kernels, f, base.array.kernel);
              if (Status s = point.ToDpeParams(base).Validate(); !s.ok()) {
                return s;
              }
              points.push_back(point);
            }
          }
        }
      }
    }
  }
  return points;
}

}  // namespace cim::dse
