// Sweep driver: expand a SweepSpec and score every design point.
//
// Each point is evaluated end to end — accuracy by running the behavioural
// DpeAccelerator against the float golden model on a shared workload
// (nn::BuildMlp + nn::MakeClusterDataset), latency/energy by the analytical
// DPE model, area by the silicon area model — and the four numbers become
// the point's Pareto Objectives. Points run concurrently on a
// cim::ThreadPool, but every point draws its randomness from
// Rng(DeriveSeed(root seed, point.index)), so a sweep's results are
// bit-identical at any thread count (including fully serial), which is what
// the artifact's two-run byte-diff gate in scripts/check.sh replays.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dse/pareto.h"
#include "dse/spec.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "workloads/workloads.h"

namespace cim::dse {

// The shared evaluation workload: one MLP classifier plus a slice of its
// cluster dataset. All design points score the *same* network and inputs so
// accuracy differences are attributable to the configuration alone.
struct WorkloadParams {
  std::vector<std::size_t> widths = {32, 48, 6};  // first entry = input dim
  std::size_t classes = 6;
  std::size_t eval_samples = 30;
  double weight_scale = 0.3;
  // Wide clusters on purpose: with tight clusters every sample of a class
  // shares one argmax and accuracy collapses to ~`classes` independent
  // values; spread like this keeps the 30 eval samples decorrelated.
  double cluster_spread = 0.30;
  // The paper's Table 2 class this workload instantiates; echoed into the
  // artifact so the frontier is read in suitability context.
  workloads::AppClass app_class = workloads::AppClass::kNeuralNetworks;

  [[nodiscard]] Status Validate() const;
};

struct SweepWorkload {
  nn::Network net;
  std::vector<nn::Tensor> inputs;
  std::vector<std::size_t> golden_top1;  // argmax of the float forward pass
  workloads::AppClass app_class = workloads::AppClass::kNeuralNetworks;

  // Build the workload from (params, seed): network weights and dataset are
  // drawn from DeriveSeed children of `seed`, independent of every
  // per-point stream.
  [[nodiscard]] static Expected<SweepWorkload> Make(const WorkloadParams& p,
                                                    std::uint64_t seed);
};

// One scored design point.
struct PointResult {
  DesignPoint point;
  Objectives objectives;
  // Top-1 agreement between this point's (noisy) outputs and the outputs of
  // the same configuration with read noise forced to zero — everything else
  // (programmed conductances, injected faults, quantization) identical. By
  // construction 1.0 at sigma 0; read noise can only lower it, which is the
  // monotone invariant bench_dse_sweep gates on. The golden-model accuracy
  // in `objectives` is NOT sigma-monotone here: quantization bias can be
  // dithered by moderate noise (stochastic resonance), a real effect this
  // metric deliberately factors out.
  double noise_self_agreement = 1.0;
  std::size_t arrays_used = 0;     // inference arrays + provisioned spares
  double array_area_um2 = 0.0;     // one array + periphery share
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_degraded = 0;
};

struct DriverParams {
  // Base configuration every point overlays (dpe::DpeParams::Isaac()).
  dpe::DpeParams base = dpe::DpeParams::Isaac();
  // Threads evaluating points (including the caller); 0 = hardware
  // concurrency, 1 = serial. Results are bit-identical at every setting.
  std::size_t worker_threads = 0;
  std::uint64_t seed = 0x0d5eULL;
  // Stuck-on cells injected into layer 0 of every point's accelerator at
  // DeriveSeed-keyed positions. Gives the spare-tiles axis observable
  // effect: without injected faults, spares are pure area overhead.
  std::size_t fault_cells = 0;
  WorkloadParams workload;

  [[nodiscard]] Status Validate() const;
};

class SweepDriver {
 public:
  [[nodiscard]] static Expected<std::unique_ptr<SweepDriver>> Create(
      const DriverParams& params);

  // Expand `spec` against the base configuration and score every point.
  // Results are in canonical grid order (PointResult i is grid index i).
  [[nodiscard]] Expected<std::vector<PointResult>> Run(
      const SweepSpec& spec) const;

  [[nodiscard]] const SweepWorkload& workload() const { return workload_; }
  [[nodiscard]] const DriverParams& params() const { return params_; }

 private:
  SweepDriver(DriverParams params, SweepWorkload workload)
      : params_(std::move(params)), workload_(std::move(workload)) {}

  [[nodiscard]] Expected<PointResult> EvaluatePoint(
      const DesignPoint& point) const;

  DriverParams params_;
  SweepWorkload workload_;
};

// Convenience for callers that need objectives only.
[[nodiscard]] std::vector<Objectives> ObjectivesOf(
    const std::vector<PointResult>& results);

}  // namespace cim::dse
