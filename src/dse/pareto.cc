#include "dse/pareto.h"

namespace cim::dse {

bool Dominates(const Objectives& a, const Objectives& b) {
  if (a.accuracy < b.accuracy) return false;
  if (a.latency_ns > b.latency_ns) return false;
  if (a.energy_pj > b.energy_pj) return false;
  if (a.area_mm2 > b.area_mm2) return false;
  return a.accuracy > b.accuracy || a.latency_ns < b.latency_ns ||
         a.energy_pj < b.energy_pj || a.area_mm2 < b.area_mm2;
}

std::vector<std::size_t> ParetoFrontIndices(
    std::span<const Objectives> points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace cim::dse
