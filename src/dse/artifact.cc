#include "dse/artifact.h"

#include <cstdio>

#include "device/noise_model.h"
#include "dse/pareto.h"
#include "workloads/workloads.h"

namespace cim::dse {
namespace {

// All numeric formatting funnels through here: explicit precision, no
// locale, so the emitted bytes are a pure function of the values.
template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

void AppendSizeArray(std::string& out, const std::vector<std::size_t>& v) {
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    Appendf(out, i == 0 ? "%zu" : ", %zu", v[i]);
  }
  out += "]";
}

void AppendIntArray(std::string& out, const std::vector<int>& v) {
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    Appendf(out, i == 0 ? "%d" : ", %d", v[i]);
  }
  out += "]";
}

void AppendDoubleArray(std::string& out, const std::vector<double>& v) {
  out += "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    Appendf(out, i == 0 ? "%.3f" : ", %.3f", v[i]);
  }
  out += "]";
}

}  // namespace

SweepArtifact MakeArtifact(const std::string& mode, const SweepSpec& spec,
                           const SweepDriver& driver,
                           std::vector<PointResult> results) {
  SweepArtifact artifact;
  artifact.mode = mode;
  artifact.spec = spec;
  artifact.seed = driver.params().seed;
  artifact.fault_cells = driver.params().fault_cells;
  artifact.workload = driver.params().workload;
  artifact.network_name = driver.workload().net.name;
  artifact.pareto_indices = ParetoFrontIndices(ObjectivesOf(results));
  artifact.results = std::move(results);
  return artifact;
}

std::string WriteSweepJson(const SweepArtifact& artifact) {
  const workloads::AppClass app = artifact.workload.app_class;
  const workloads::Characteristics chars = workloads::CharacteristicsOf(app);

  std::string out;
  out.reserve(4096 + artifact.results.size() * 320);
  out += "{\n";
  out += "  \"bench\": \"dse_sweep\",\n";
  Appendf(out, "  \"mode\": \"%s\",\n", artifact.mode.c_str());
  Appendf(out, "  \"seed\": %llu,\n",
          static_cast<unsigned long long>(artifact.seed));
  Appendf(out, "  \"fault_cells\": %zu,\n", artifact.fault_cells);

  out += "  \"workload\": {\n";
  Appendf(out, "    \"network\": \"%s\",\n", artifact.network_name.c_str());
  out += "    \"widths\": ";
  AppendSizeArray(out, artifact.workload.widths);
  out += ",\n";
  Appendf(out, "    \"eval_samples\": %zu,\n", artifact.workload.eval_samples);
  Appendf(out, "    \"app_class\": \"%s\",\n",
          workloads::AppClassName(app).c_str());
  Appendf(out, "    \"paper_cim_suitability\": \"%s\",\n",
          workloads::LevelName(workloads::PaperCimSuitability(app)).c_str());
  Appendf(out, "    \"cim_suitability_score\": %.4f\n",
          workloads::CimSuitabilityScore(chars));
  out += "  },\n";

  out += "  \"spec\": {\n";
  out += "    \"crossbar_sizes\": ";
  AppendSizeArray(out, artifact.spec.crossbar_sizes);
  out += ",\n    \"adc_bits\": ";
  AppendIntArray(out, artifact.spec.adc_bits);
  out += ",\n    \"cell_bits\": ";
  AppendIntArray(out, artifact.spec.cell_bits);
  out += ",\n    \"spare_tiles\": ";
  AppendSizeArray(out, artifact.spec.spare_tiles);
  out += ",\n    \"noise_sigmas\": ";
  AppendDoubleArray(out, artifact.spec.noise_sigmas);
  out += ",\n    \"kernels\": [";
  for (std::size_t i = 0; i < artifact.spec.kernels.size(); ++i) {
    Appendf(out, i == 0 ? "\"%s\"" : ", \"%s\"",
            device::KernelPolicyName(artifact.spec.kernels[i]).c_str());
  }
  out += "]\n  },\n";

  Appendf(out, "  \"point_count\": %zu,\n", artifact.results.size());
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < artifact.results.size(); ++i) {
    const PointResult& r = artifact.results[i];
    bool on_front = false;
    for (std::size_t idx : artifact.pareto_indices) {
      if (idx == r.point.index) {
        on_front = true;
        break;
      }
    }
    out += "    {";
    Appendf(out, "\"index\": %zu, ", r.point.index);
    Appendf(out, "\"label\": \"%s\", ", r.point.Label().c_str());
    Appendf(out, "\"crossbar_size\": %zu, ", r.point.crossbar_size);
    Appendf(out, "\"adc_bits\": %d, ", r.point.adc_bits);
    Appendf(out, "\"cell_bits\": %d, ", r.point.cell_bits);
    Appendf(out, "\"spare_tiles\": %zu, ", r.point.spare_tiles);
    Appendf(out, "\"noise_sigma\": %.3f, ", r.point.noise_sigma);
    Appendf(out, "\"kernel\": \"%s\", ",
            device::KernelPolicyName(r.point.kernel).c_str());
    Appendf(out, "\"accuracy\": %.6f, ", r.objectives.accuracy);
    Appendf(out, "\"noise_self_agreement\": %.6f, ", r.noise_self_agreement);
    Appendf(out, "\"latency_ns\": %.3f, ", r.objectives.latency_ns);
    Appendf(out, "\"energy_pj\": %.3f, ", r.objectives.energy_pj);
    Appendf(out, "\"area_mm2\": %.6f, ", r.objectives.area_mm2);
    Appendf(out, "\"arrays\": %zu, ", r.arrays_used);
    Appendf(out, "\"array_area_um2\": %.3f, ", r.array_area_um2);
    Appendf(out, "\"faults_detected\": %llu, ",
            static_cast<unsigned long long>(r.faults_detected));
    Appendf(out, "\"faults_degraded\": %llu, ",
            static_cast<unsigned long long>(r.faults_degraded));
    Appendf(out, "\"on_frontier\": %s}",
            on_front ? "true" : "false");
    out += i + 1 < artifact.results.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  Appendf(out, "  \"pareto_front_size\": %zu,\n",
          artifact.pareto_indices.size());
  out += "  \"pareto_front\": ";
  AppendSizeArray(out, artifact.pareto_indices);
  out += "\n}\n";
  return out;
}

}  // namespace cim::dse
