// Declarative design-space exploration spec (ROADMAP Open item 2, the
// CIMFlow/CiMLoop-style sweep the paper's Table 2 / §IV argument calls for).
//
// A SweepSpec lists the values to visit on each configuration axis of the
// DPE (crossbar geometry, ADC resolution, cell bits — and through them the
// bit-slice count — spare tiles, device read noise, simulation kernel
// policy). ExpandGrid turns the spec into the cartesian product of concrete
// DesignPoints in a canonical row-major order, so a point's grid index — and
// with it the RNG stream the driver derives per point — is a pure function
// of the spec, never of evaluation order or thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "device/noise_model.h"
#include "dpe/params.h"

namespace cim::dse {

// Sweep axes over dpe::DpeParams fields. An empty axis keeps the base
// configuration's value (a one-point axis). Expansion order is row-major
// with crossbar_sizes outermost and kernels innermost.
struct SweepSpec {
  std::vector<std::size_t> crossbar_sizes;  // array rows == cols == size
  std::vector<int> adc_bits;                // array.adc.bits
  // array.cell.cell_bits; the bit-slice count follows as
  // DpeParams::slices() = ceil((weight_bits - 1) / cell_bits).
  std::vector<int> cell_bits;
  std::vector<std::size_t> spare_tiles;     // fault_tolerance.spare_tiles
  std::vector<double> noise_sigmas;         // array.cell.read_noise_sigma
  std::vector<device::KernelPolicy> kernels;

  [[nodiscard]] Status Validate() const;
  [[nodiscard]] std::size_t PointCount() const;

  // The two grids bench_dse_sweep runs (shared with tests so the artifact
  // shape is pinned in one place): a coarse smoke grid cheap enough for
  // every sanitizer leg, and the fine full grid recorded as the BENCH
  // artifact.
  [[nodiscard]] static SweepSpec Smoke();
  [[nodiscard]] static SweepSpec Full();
};

// One concrete configuration of the expanded grid.
struct DesignPoint {
  std::size_t index = 0;  // canonical row-major grid index
  std::size_t crossbar_size = 128;
  int adc_bits = 8;
  int cell_bits = 2;
  std::size_t spare_tiles = 0;
  double noise_sigma = 0.0;
  device::KernelPolicy kernel = device::KernelPolicy::kFastBitExact;

  // Base params overlaid with this point's axis values. columns_per_adc
  // follows the crossbar size (ISAAC shares one ADC per array), fault
  // tolerance engages exactly when spare tiles are provisioned, and
  // worker_threads is forced to 1: the sweep parallelizes across points,
  // never inside one.
  [[nodiscard]] dpe::DpeParams ToDpeParams(const dpe::DpeParams& base) const;

  // Stable human-readable id, e.g. "xb64_adc6_cell2_sp0_sg0.050_fast-noise".
  [[nodiscard]] std::string Label() const;
};

// Expand the spec against a base configuration in canonical order.
[[nodiscard]] Expected<std::vector<DesignPoint>> ExpandGrid(
    const SweepSpec& spec, const dpe::DpeParams& base);

}  // namespace cim::dse
