#include "trend/machines.h"

#include <array>
#include <cmath>

namespace cim::trend {
namespace {

// year, machine, peak flop/s, memory bandwidth bytes/s.
constexpr std::array<MachineRecord, 18> kMachines{{
    {1945, "EDVAC", 1.0e3, 1.0e3},
    {1951, "UNIVAC I", 2.0e3, 2.4e3},
    {1955, "IBM 704", 1.2e4, 2.0e4},
    {1964, "CDC 6600", 3.0e6, 4.0e6},
    {1969, "CDC 7600", 3.6e7, 3.6e7},
    {1976, "Cray-1", 1.6e8, 6.4e8},
    {1982, "Cray X-MP", 4.0e8, 1.2e9},
    {1988, "Cray Y-MP", 2.7e9, 5.4e9},
    {1993, "CM-5 (1k nodes)", 1.3e11, 1.3e11},
    {1997, "ASCI Red", 1.8e12, 6.0e11},
    {2002, "Earth Simulator", 4.1e13, 1.3e13},
    {2005, "BlueGene/L", 3.6e14, 5.5e13},
    {2008, "Roadrunner", 1.4e15, 1.0e14},
    {2011, "K computer", 1.1e16, 5.5e14},
    {2012, "Titan", 2.7e16, 7.0e14},
    {2013, "Tianhe-2", 5.5e16, 1.4e15},
    {2016, "Sunway TaihuLight", 1.3e17, 5.6e15},
    {2018, "Summit", 2.0e17, 1.1e15},  // DDR4 main-memory aggregate
}};

}  // namespace

std::span<const MachineRecord> HistoricalMachines() { return kMachines; }

double BytesPerFlopDecadalSlope(std::span<const MachineRecord> machines) {
  if (machines.size() < 2) return 0.0;
  // Least squares of y = log10(bytes/flop) against x = year/10.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(machines.size());
  for (const MachineRecord& m : machines) {
    const double x = m.year / 10.0;
    const double y = std::log10(m.bytes_per_flop());
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace cim::trend
