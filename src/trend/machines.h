// Fig 2 dataset: memory bandwidth per floating-point operation over the
// history of computing, 1945-2018. The figure's content is the steady fall
// of the bytes/flop ratio from ~1 (all of memory available at processor
// speed) to three-plus orders of magnitude lower — the imbalance CIM
// reverses.
//
// Entries are public specifications of representative machines (peak
// floating-point rate and peak main-memory bandwidth of one node/system as
// commonly reported). The trend, not any individual datum, is the result.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cim::trend {

struct MachineRecord {
  int year;
  std::string_view name;
  double peak_flops;            // flop/s (additions counted for pre-FPU era)
  double memory_bandwidth_bps;  // bytes/s

  [[nodiscard]] double bytes_per_flop() const {
    return memory_bandwidth_bps / peak_flops;
  }
};

// Chronologically ordered historical dataset.
[[nodiscard]] std::span<const MachineRecord> HistoricalMachines();

// Least-squares slope of log10(bytes/flop) per decade — the headline rate
// of decline Fig 2 shows.
[[nodiscard]] double BytesPerFlopDecadalSlope(
    std::span<const MachineRecord> machines);

}  // namespace cim::trend
