// Partitioning a neural network across a W×H tile grid for fabric-scale
// co-simulation (the paper's micro-unit → unit → tile → fabric hierarchy).
//
// Two split axes compose:
//   layer splits    contiguous layer groups become pipeline *stages*; stage
//                   s feeds stage s+1 its activations over the NoC. Pool
//                   layers attach to the preceding MVM layer's stage.
//   column splits   a stage shards its dense layer's output features across
//                   `column_splits` tiles. Each shard computes a slice of
//                   the output vector, and every consumer tile of the next
//                   stage receives every slice. Column math is independent
//                   of its neighbors (fixed-range weight quantization, per-
//                   column ADC), so on noise-free devices a sharded stage is
//                   bit-identical to the unsharded one.
// Each (stage, split) pair is one *tile*, placed row-major on the mesh.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/network.h"
#include "noc/packet.h"

namespace cim::fabric {

struct FabricPartitionParams {
  std::uint16_t grid_width = 2;
  std::uint16_t grid_height = 2;
  // Pipeline stages; 0 = one stage per MVM (dense/conv) layer.
  std::size_t stages = 0;
  // Output-column shards per stage. > 1 requires every stage to hold
  // exactly one dense layer (conv/pool stages don't column-shard).
  std::size_t column_splits = 1;

  [[nodiscard]] Status Validate() const {
    if (grid_width == 0 || grid_height == 0) {
      return InvalidArgument("empty fabric grid");
    }
    if (column_splits == 0) return InvalidArgument("column_splits must be >=1");
    return Status::Ok();
  }
};

// One tile of the partitioned network.
struct TileSpec {
  std::size_t stage = 0;
  std::size_t split = 0;
  noc::NodeId node;    // mesh placement, row-major by tile index
  nn::Network subnet;  // the contiguous layer slice this tile executes
  // The slice this tile produces within its stage's flattened output.
  std::size_t out_begin = 0;
  std::size_t out_count = 0;
};

struct FabricPlan {
  FabricPartitionParams params;
  std::size_t stage_count = 0;
  std::size_t splits_per_stage = 1;
  std::vector<TileSpec> tiles;  // ordered by (stage, split)
  // Shape consumed by each stage (post conv→dense flatten) and the shape
  // the final stage produces.
  std::vector<std::vector<std::size_t>> stage_input_shape;
  std::vector<std::size_t> output_shape;
  // Flattened element count each stage emits.
  std::vector<std::size_t> stage_out_dim;

  [[nodiscard]] const TileSpec& tile(std::size_t stage,
                                     std::size_t split) const {
    return tiles[stage * splits_per_stage + split];
  }
};

// Build the partition plan: group layers into stages, shard stage outputs,
// place tiles on the grid. Fails when the network has no MVM layers, when
// more tiles are requested than the grid holds, when `stages` exceeds the
// MVM layer count, or when column_splits > 1 meets a non-dense stage.
[[nodiscard]] Expected<FabricPlan> PartitionNetwork(
    const nn::Network& net, const FabricPartitionParams& params);

}  // namespace cim::fabric
