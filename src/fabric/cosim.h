// Fabric-scale co-simulation: a partitioned network's tiles execute real
// DpeAccelerator work on host threads while their activations travel the
// mesh NoC as packets — per-hop contention, virtual-channel QoS and link
// failures shape the end-to-end latency/energy a fabric experiment reports.
//
// Epoch-barrier conservative scheme (the determinism contract of PRs 2–4,
// extended to a distributed simulation):
//   1. compute  — every tile with work this epoch runs its stage on the
//                 thread pool. Tiles are the unit of parallelism; each tile
//                 appears at most once per epoch and its accelerator is
//                 serial (worker_threads = 1), so no state is shared.
//   2. barrier  — on the calling thread, tile results are merged in
//                 canonical (stage, split) order, the virtual clock advances
//                 to epoch_start + max tile latency, and every inter-stage
//                 activation packet is injected in canonical
//                 (stage, src split, dst split) order at that instant.
//   3. exchange — the event queue drains; deliveries land in (time, seq)
//                 order fixed entirely by step 2.
// Steps 2–3 are serial and step 1 writes only per-task slots, so outputs,
// costs and NoC telemetry are bit-identical at any worker_threads — the
// bench_fabric_cosim bit-identity gate and fabric_cosim_test pin this.
//
// The batch pipelines through the stages as a wavefront: in epoch e, stage
// s works on batch element e − s, so up to stage_count elements are in
// flight and every tile is busy in steady state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/event_queue.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dpe/accelerator.h"
#include "dpe/params.h"
#include "fabric/partition.h"
#include "nn/network.h"
#include "noc/mesh.h"

namespace cim::fabric {

struct FabricParams {
  FabricPartitionParams partition;
  // Per-tile accelerator config. worker_threads is forced to 1: tiles are
  // the unit of host parallelism, and a serial accelerator per tile is what
  // keeps the epoch schedule deterministic.
  dpe::DpeParams dpe = dpe::DpeParams::Isaac();
  // Mesh config; width/height are overridden from the partition grid.
  noc::MeshParams mesh;
  // Host threads co-simulating tiles (1 = serial, 0 = hardware concurrency).
  // Purely a simulation-speed knob; results are bit-identical at every
  // setting.
  std::size_t worker_threads = 0;
  // QoS class and modeled wire width of activation traffic.
  noc::QosClass activation_qos = noc::QosClass::kBulk;
  std::uint32_t bytes_per_activation = 8;
  // Root seed; tile accelerators derive their programming/noise streams
  // from (seed, tile index).
  std::uint64_t seed = 0x5EEDFAB;

  [[nodiscard]] Status Validate() const {
    if (Status s = partition.Validate(); !s.ok()) return s;
    if (bytes_per_activation == 0) {
      return InvalidArgument("bytes_per_activation must be positive");
    }
    return Status::Ok();
  }
};

class FabricCoSim : public noc::DeliverySink {
 public:
  [[nodiscard]] static Expected<std::unique_ptr<FabricCoSim>> Create(
      const FabricParams& params, const nn::Network& net);

  // Pipelined batch inference. Per element, InferResult::cost accumulates
  // every stage's compute cost plus the element's NoC transfer cost (also
  // broken out in InferResult::noc_cost); activations lost to link/node
  // failures zero-fill their slice and count in fault_report.degraded.
  // Bit-identical to the serial run at any worker_threads.
  [[nodiscard]] Expected<std::vector<dpe::InferResult>> InferBatch(
      std::span<const nn::Tensor> inputs);

  [[nodiscard]] const FabricPlan& plan() const { return plan_; }
  [[nodiscard]] const noc::MeshNoc& noc() const { return *noc_; }
  [[nodiscard]] const noc::NocTelemetry& noc_telemetry() const {
    return noc_->telemetry();
  }
  // Virtual time consumed so far (advances across batches).
  [[nodiscard]] TimeNs now() const { return queue_.now(); }
  [[nodiscard]] std::uint64_t epochs_run() const { return epochs_run_; }

  // Fault hooks, applied between epochs (passthrough to the mesh).
  [[nodiscard]] Status SetLinkFailed(noc::NodeId from, noc::Direction dir,
                                     bool failed) {
    return noc_->SetLinkFailed(from, dir, failed);
  }
  [[nodiscard]] Status SetNodeFailed(noc::NodeId node, bool failed) {
    return noc_->SetNodeFailed(node, failed);
  }

  // DeliverySink — the co-simulator is the receiver on every tile node.
  void OnDelivery(noc::Delivery&& delivery) override;
  void OnDrop(const noc::Packet& packet, noc::DropReason reason) override;

 private:
  struct Tile {
    std::unique_ptr<dpe::DpeAccelerator> accel;
  };
  // Per-batch-element pipeline state. An element sits in exactly one stage
  // per epoch, so one input buffer and one running result suffice.
  struct ElementState {
    std::vector<double> next_input;  // assembled input for its next stage
    dpe::InferResult result;
    double transfer_ns_max = 0.0;  // worst packet of the current transition
    std::uint64_t packets_received = 0;
    std::uint64_t packets_dropped = 0;
  };

  FabricCoSim(const FabricParams& params, FabricPlan plan);

  // Decode a packet id minted by InferBatch back to its batch element.
  [[nodiscard]] std::size_t ElementOf(std::uint64_t packet_id) const;

  FabricParams params_;
  FabricPlan plan_;
  EventQueue queue_;
  std::optional<noc::MeshNoc> noc_;
  std::vector<Tile> tiles_;  // same order as plan_.tiles
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ElementState> elements_;
  std::uint64_t epochs_run_ = 0;
};

}  // namespace cim::fabric
