#include "fabric/partition.h"

#include <string>
#include <utility>
#include <variant>

namespace cim::fabric {
namespace {

bool IsMvm(const nn::Layer& layer) {
  return std::holds_alternative<nn::DenseLayer>(layer) ||
         std::holds_alternative<nn::Conv2dLayer>(layer);
}

std::size_t Flattened(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Expected<FabricPlan> PartitionNetwork(const nn::Network& net,
                                      const FabricPartitionParams& params) {
  if (Status s = params.Validate(); !s.ok()) return s;
  auto shapes = nn::LayerInputShapes(net);  // validates the network
  if (!shapes.ok()) return shapes.status();

  std::vector<std::size_t> mvm_layers;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    if (IsMvm(net.layers[i])) mvm_layers.push_back(i);
  }
  if (mvm_layers.empty()) {
    return InvalidArgument("network has no dense/conv layers to partition");
  }

  FabricPlan plan;
  plan.params = params;
  plan.stage_count = params.stages == 0 ? mvm_layers.size() : params.stages;
  if (plan.stage_count > mvm_layers.size()) {
    return InvalidArgument("more stages than MVM layers");
  }
  plan.splits_per_stage = params.column_splits;
  const std::size_t tile_count = plan.stage_count * plan.splits_per_stage;
  const std::size_t grid_size =
      static_cast<std::size_t>(params.grid_width) * params.grid_height;
  if (tile_count > grid_size) {
    return InvalidArgument("partition needs " + std::to_string(tile_count) +
                           " tiles but the grid holds " +
                           std::to_string(grid_size));
  }

  // Stage s owns the layer range [start(s), start(s+1)): boundaries sit
  // immediately before evenly distributed MVM layers, so trailing pool
  // layers stay with the stage that produced their input.
  std::vector<std::size_t> stage_start(plan.stage_count + 1);
  stage_start[0] = 0;
  for (std::size_t s = 1; s < plan.stage_count; ++s) {
    stage_start[s] = mvm_layers[s * mvm_layers.size() / plan.stage_count];
  }
  stage_start[plan.stage_count] = net.layers.size();

  plan.stage_input_shape.resize(plan.stage_count);
  plan.stage_out_dim.resize(plan.stage_count);
  plan.tiles.reserve(tile_count);
  for (std::size_t s = 0; s < plan.stage_count; ++s) {
    const std::size_t begin = stage_start[s];
    const std::size_t end = stage_start[s + 1];
    plan.stage_input_shape[s] = (*shapes)[begin];
    plan.stage_out_dim[s] = Flattened((*shapes)[end]);

    const nn::DenseLayer* dense = nullptr;
    if (plan.splits_per_stage > 1) {
      if (end - begin != 1 ||
          (dense = std::get_if<nn::DenseLayer>(&net.layers[begin])) ==
              nullptr) {
        return InvalidArgument(
            "column_splits > 1 requires single-dense-layer stages (stage " +
            std::to_string(s) + " is not)");
      }
    }
    for (std::size_t k = 0; k < plan.splits_per_stage; ++k) {
      TileSpec tile;
      tile.stage = s;
      tile.split = k;
      const std::size_t idx = plan.tiles.size();
      tile.node = {static_cast<std::uint16_t>(idx % params.grid_width),
                   static_cast<std::uint16_t>(idx / params.grid_width)};
      tile.subnet.name = net.name + ".s" + std::to_string(s) + ".k" +
                         std::to_string(k);
      tile.subnet.input_shape = plan.stage_input_shape[s];
      if (dense != nullptr) {
        // Even shard of the stage's output features.
        tile.out_begin = k * dense->out_features / plan.splits_per_stage;
        const std::size_t out_end =
            (k + 1) * dense->out_features / plan.splits_per_stage;
        tile.out_count = out_end - tile.out_begin;
        auto slice =
            nn::SliceDenseOutputs(*dense, tile.out_begin, tile.out_count);
        if (!slice.ok()) return slice.status();
        tile.subnet.layers.emplace_back(std::move(*slice));
      } else {
        tile.out_begin = 0;
        tile.out_count = plan.stage_out_dim[s];
        tile.subnet.layers.assign(net.layers.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  net.layers.begin() +
                                      static_cast<std::ptrdiff_t>(end));
      }
      if (Status s2 = tile.subnet.Validate(); !s2.ok()) return s2;
      plan.tiles.push_back(std::move(tile));
    }
  }
  plan.output_shape = (*shapes)[net.layers.size()];
  return plan;
}

}  // namespace cim::fabric
