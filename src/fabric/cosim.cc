#include "fabric/cosim.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/contracts.h"
#include "common/rng.h"

namespace cim::fabric {
namespace {

std::size_t Flattened(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

void AddFaults(dpe::FaultReport* into, const dpe::FaultReport& from) {
  into->detected += from.detected;
  into->retried += from.retried;
  into->remapped += from.remapped;
  into->degraded += from.degraded;
}

}  // namespace

FabricCoSim::FabricCoSim(const FabricParams& params, FabricPlan plan)
    : params_(params), plan_(std::move(plan)) {}

Expected<std::unique_ptr<FabricCoSim>> FabricCoSim::Create(
    const FabricParams& params, const nn::Network& net) {
  if (Status s = params.Validate(); !s.ok()) return s;
  auto plan = PartitionNetwork(net, params.partition);
  if (!plan.ok()) return plan.status();
  auto sim =
      std::unique_ptr<FabricCoSim>(new FabricCoSim(params, std::move(*plan)));

  noc::MeshParams mesh = params.mesh;
  mesh.width = params.partition.grid_width;
  mesh.height = params.partition.grid_height;
  auto noc = noc::MeshNoc::Create(mesh, &sim->queue_);
  if (!noc.ok()) return noc.status();
  // Emplaced before any event is scheduled; the mesh never moves again, so
  // the tag-handler pointer inside future events stays valid.
  sim->noc_.emplace(std::move(*noc));

  dpe::DpeParams tile_params = params.dpe;
  tile_params.worker_threads = 1;  // tiles are the unit of host parallelism
  sim->tiles_.reserve(sim->plan_.tiles.size());
  for (std::size_t i = 0; i < sim->plan_.tiles.size(); ++i) {
    const TileSpec& spec = sim->plan_.tiles[i];
    auto accel = dpe::DpeAccelerator::Create(tile_params, spec.subnet,
                                             Rng(DeriveSeed(params.seed, i)));
    if (!accel.ok()) return accel.status();
    sim->tiles_.push_back(Tile{std::move(*accel)});
    sim->noc_->SetDeliverySink(spec.node, sim.get());
  }

  const std::size_t threads = params.worker_threads == 0
                                  ? HardwareConcurrency()
                                  : params.worker_threads;
  if (threads > 1) {
    // The calling thread participates in every parallel region, so the
    // pool holds one fewer background worker than the requested total.
    sim->pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  return sim;
}

std::size_t FabricCoSim::ElementOf(std::uint64_t packet_id) const {
  const std::uint64_t per_element =
      static_cast<std::uint64_t>(plan_.stage_count) * plan_.splits_per_stage *
      plan_.splits_per_stage;
  return static_cast<std::size_t>(packet_id / per_element);
}

void FabricCoSim::OnDelivery(noc::Delivery&& delivery) {
  const std::size_t K = plan_.splits_per_stage;
  const std::uint64_t per_element =
      static_cast<std::uint64_t>(plan_.stage_count) * K * K;
  const auto b = static_cast<std::size_t>(delivery.packet.id / per_element);
  if (b >= elements_.size()) return;  // not fabric traffic
  const std::uint64_t rem = delivery.packet.id % per_element;
  const auto stage = static_cast<std::size_t>(rem / (K * K));
  const auto src = static_cast<std::size_t>((rem / K) % K);
  const TileSpec& src_tile = plan_.tile(stage, src);
  ElementState& el = elements_[b];

  // Write the producer's slice into the element's next-stage input. The K
  // consumer tiles receive identical copies, so the write is idempotent.
  CIM_DCHECK(el.next_input.size() >= src_tile.out_begin + src_tile.out_count);
  CIM_DCHECK(delivery.packet.inline_payload.size() ==
             src_tile.out_count * sizeof(double));
  std::memcpy(el.next_input.data() + src_tile.out_begin,
              delivery.packet.inline_payload.data(),
              src_tile.out_count * sizeof(double));
  ++el.packets_received;

  const double latency =
      (delivery.delivered_at - delivery.packet.injected_at).ns;
  el.transfer_ns_max = std::max(el.transfer_ns_max, latency);

  // Per-element energy attribution mirrors the mesh's per-hop accounting.
  const noc::MeshParams& mp = noc_->params();
  const double hops = static_cast<double>(delivery.hops);
  const double energy =
      hops * (mp.hop_energy_per_byte.pj * delivery.packet.payload_bytes +
              mp.router_energy.pj);
  const double bytes = hops * delivery.packet.payload_bytes;
  el.result.noc_cost.energy_pj += energy;
  el.result.cost.energy_pj += energy;
  el.result.noc_cost.bytes_moved += bytes;
  el.result.cost.bytes_moved += bytes;
  el.result.noc_cost.operations += static_cast<std::uint64_t>(delivery.hops);
  el.result.cost.operations += static_cast<std::uint64_t>(delivery.hops);
}

void FabricCoSim::OnDrop(const noc::Packet& packet, noc::DropReason) {
  const std::size_t b = ElementOf(packet.id);
  if (b >= elements_.size()) return;
  ElementState& el = elements_[b];
  ++el.packets_dropped;
  // The slice never arrives: its zero-fill degrades this element gracefully
  // instead of poisoning the batch — the accelerator's degrade semantics,
  // lifted to the fabric.
  el.result.fault_report.degraded += 1;
}

Expected<std::vector<dpe::InferResult>> FabricCoSim::InferBatch(
    std::span<const nn::Tensor> inputs) {
  const std::size_t S = plan_.stage_count;
  const std::size_t K = plan_.splits_per_stage;
  const std::size_t B = inputs.size();
  if (B == 0) return std::vector<dpe::InferResult>{};
  const std::size_t in_dim = Flattened(plan_.stage_input_shape[0]);
  for (const nn::Tensor& input : inputs) {
    if (input.size() != in_dim) {
      return InvalidArgument("input size does not match partitioned network");
    }
  }

  elements_.assign(B, ElementState{});
  for (std::size_t b = 0; b < B; ++b) {
    elements_[b].next_input = inputs[b].vec();
  }

  struct Task {
    std::size_t stage, split, element;
  };
  std::vector<Task> tasks;
  std::vector<std::optional<Expected<dpe::InferResult>>> task_results;
  std::vector<nn::Tensor> split_out(K);
  std::vector<noc::Packet> packets;

  // Wavefront pipeline: epoch e runs stage s on element e - s.
  const std::size_t epochs = B + S - 1;
  for (std::size_t e = 0; e < epochs; ++e) {
    tasks.clear();
    for (std::size_t s = 0; s < S && s <= e; ++s) {
      const std::size_t b = e - s;
      if (b >= B) continue;
      for (std::size_t k = 0; k < K; ++k) tasks.push_back(Task{s, k, b});
    }

    // Compute phase: each active tile runs its stage. Tasks write disjoint
    // slots and read disjoint (or shared read-only) element inputs, so the
    // region is race-free and scheduling cannot influence any value.
    task_results.assign(tasks.size(), std::nullopt);
    const auto run_task = [&](std::size_t i) {
      const Task& t = tasks[i];
      nn::Tensor in(plan_.stage_input_shape[t.stage],
                    elements_[t.element].next_input);
      task_results[i] = tiles_[t.stage * K + t.split].accel->Infer(in);
    };
    if (pool_) {
      pool_->ParallelFor(tasks.size(), run_task);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) run_task(i);
    }

    // Barrier: merge in canonical (stage, split) order, mint packets in
    // canonical (stage, src, dst) order.
    const TimeNs epoch_start = queue_.now();
    double max_compute_ns = 0.0;
    packets.clear();
    for (std::size_t i = 0; i < tasks.size();) {
      const std::size_t s = tasks[i].stage;
      const std::size_t b = tasks[i].element;
      ElementState& el = elements_[b];
      double stage_latency_ns = 0.0;
      for (std::size_t k = 0; k < K; ++k, ++i) {
        CIM_CHECK(task_results[i].has_value());
        if (!task_results[i]->ok()) return task_results[i]->status();
        dpe::InferResult r = std::move(**task_results[i]);
        // Splits fire concurrently in hardware: stage latency is the max,
        // energy/traffic are the sum.
        stage_latency_ns = std::max(stage_latency_ns, r.cost.latency_ns);
        el.result.cost.energy_pj += r.cost.energy_pj;
        el.result.cost.bytes_moved += r.cost.bytes_moved;
        el.result.cost.operations += r.cost.operations;
        AddFaults(&el.result.fault_report, r.fault_report);
        split_out[k] = std::move(r.output);
      }
      el.result.cost.latency_ns += stage_latency_ns;
      max_compute_ns = std::max(max_compute_ns, stage_latency_ns);

      if (s + 1 < S) {
        // Zero-filled receive buffer first: deliveries (and drops) for this
        // transition land during the exchange below.
        el.next_input.assign(plan_.stage_out_dim[s], 0.0);
        el.transfer_ns_max = 0.0;
        for (std::size_t src = 0; src < K; ++src) {
          const TileSpec& src_tile = plan_.tile(s, src);
          const std::size_t payload_doubles = src_tile.out_count;
          for (std::size_t dst = 0; dst < K; ++dst) {
            noc::Packet p;
            p.id = ((static_cast<std::uint64_t>(b) * S + s) * K + src) * K +
                   dst;
            p.stream_id = b;
            p.source = src_tile.node;
            p.destination = plan_.tile(s + 1, dst).node;
            p.qos = params_.activation_qos;
            p.kind = noc::PayloadKind::kData;
            p.payload_bytes = static_cast<std::uint32_t>(
                payload_doubles * params_.bytes_per_activation);
            p.inline_payload.resize(payload_doubles * sizeof(double));
            std::memcpy(p.inline_payload.data(), split_out[src].data(),
                        payload_doubles * sizeof(double));
            packets.push_back(std::move(p));
          }
        }
      } else if (K == 1) {
        el.result.output = std::move(split_out[0]);
      } else {
        nn::Tensor out(plan_.output_shape);
        for (std::size_t k = 0; k < K; ++k) {
          const TileSpec& t = plan_.tile(s, k);
          std::memcpy(out.data() + t.out_begin, split_out[k].data(),
                      t.out_count * sizeof(double));
        }
        el.result.output = std::move(out);
      }
    }

    // Exchange: the clock advances to the epoch's compute horizon, packets
    // inject there in canonical order, and the event queue drains — every
    // delivery time is a pure function of this epoch's canonical sequence.
    queue_.RunUntil(epoch_start + TimeNs(max_compute_ns));
    if (!packets.empty()) {
      // Owned burst: the mesh takes the whole buffer, so injection is
      // validation + one event; `packets` is left moved-from and the
      // clear() at the top of the next epoch re-arms it.
      Status s = noc_->InjectBurst(std::move(packets));
      // Drops at injection (failed destination / cut source) already
      // degraded the element via OnDrop; only a malformed packet is fatal.
      if (!s.ok() && s.code() == ErrorCode::kInvalidArgument) return s;
      queue_.Run();
    }
    for (std::size_t s = 0; s + 1 < S && s <= e; ++s) {
      const std::size_t b = e - s;
      if (b >= B) continue;
      ElementState& el = elements_[b];
      el.result.noc_cost.latency_ns += el.transfer_ns_max;
      el.result.cost.latency_ns += el.transfer_ns_max;
    }
    ++epochs_run_;
  }

  std::vector<dpe::InferResult> results;
  results.reserve(B);
  for (ElementState& el : elements_) {
    results.push_back(std::move(el.result));
  }
  elements_.clear();
  return results;
}

}  // namespace cim::fabric
