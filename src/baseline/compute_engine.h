// Common interface for the §VI comparison: the DPE and the von Neumann
// baselines all estimate the cost of one batch-1 network inference in the
// same currency (latency, energy, bytes moved across the memory interface).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "nn/network.h"

namespace cim::baseline {

struct EngineCost {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  double dram_bytes = 0.0;  // data crossing the off-chip memory interface
  std::uint64_t macs = 0;

  // pJ/ns = 1e-12 J / 1e-9 s = 1e-3 W, so the ratio is in milliwatts and
  // the 1e-3 factor converts to watts. Pinned by baseline_test.cc.
  [[nodiscard]] double average_power_watts() const {
    return latency_ns > 0.0 ? energy_pj / latency_ns * 1e-3 : 0.0;
  }
  // Effective bandwidth at which the engine touched weights/activations.
  // bytes/ns = 1e9 bytes/s, so the ratio is already in gigaBYTES per second
  // (GB/s, not gigabits) — no scale factor needed. Pinned by
  // baseline_test.cc.
  [[nodiscard]] double weight_bandwidth_gbps() const {
    return latency_ns > 0.0 ? dram_bytes / latency_ns : 0.0;
  }
};

class ComputeEngine {
 public:
  virtual ~ComputeEngine() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Expected<EngineCost> EstimateInference(
      const nn::Network& net) const = 0;
};

}  // namespace cim::baseline
