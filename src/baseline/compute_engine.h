// Common interface for the §VI comparison: the DPE and the von Neumann
// baselines all estimate the cost of one batch-1 network inference in the
// same currency (latency, energy, bytes moved across the memory interface).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "nn/network.h"

namespace cim::baseline {

struct EngineCost {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  double dram_bytes = 0.0;  // data crossing the off-chip memory interface
  std::uint64_t macs = 0;

  [[nodiscard]] double average_power_watts() const {
    return latency_ns > 0.0 ? energy_pj / latency_ns * 1e-3 : 0.0;
  }
  // Effective bandwidth at which the engine touched weights/activations.
  [[nodiscard]] double weight_bandwidth_gbps() const {
    return latency_ns > 0.0 ? dram_bytes / latency_ns : 0.0;
  }
};

class ComputeEngine {
 public:
  virtual ~ComputeEngine() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Expected<EngineCost> EstimateInference(
      const nn::Network& net) const = 0;
};

}  // namespace cim::baseline
