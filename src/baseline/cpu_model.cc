#include "baseline/cpu_model.h"

#include <algorithm>

namespace cim::baseline {

Expected<EngineCost> CpuModel::EstimateInference(
    const nn::Network& net) const {
  if (Status s = params_.Validate(); !s.ok()) return s;
  auto profiles = nn::ProfileNetwork(net);
  if (!profiles.ok()) return profiles.status();

  // Batch-1: if the whole model fits in L3, weights stay resident after the
  // first pass; otherwise every inference streams them from DRAM (the Fig 2
  // bytes/flop wall).
  const double total_weight_bytes =
      static_cast<double>(net.TotalWeights()) * 4.0;  // fp32
  const bool weights_resident = total_weight_bytes <= params_.l3_bytes;

  EngineCost cost;
  const double effective_flops_per_ns =
      params_.peak_gflops * params_.compute_efficiency;  // flops per ns

  for (const nn::LayerProfile& p : *profiles) {
    const double flops = 2.0 * static_cast<double>(p.macs);
    const double weight_bytes = static_cast<double>(p.weight_count) * 4.0;
    const double activation_bytes =
        static_cast<double>(p.in_elements + p.out_elements) * 4.0;

    const double dram_bytes =
        (weights_resident ? 0.0 : weight_bytes) +
        // Activations of large layers spill past L2.
        (activation_bytes > params_.l2_bytes ? activation_bytes : 0.0);

    const double compute_ns =
        flops > 0.0 ? flops / effective_flops_per_ns : 0.0;
    const double memory_ns = dram_bytes / params_.dram_bandwidth_gbps;
    const double layer_ns =
        std::max(compute_ns, memory_ns) + params_.layer_overhead_ns;

    cost.latency_ns += layer_ns;
    cost.dram_bytes += dram_bytes;
    cost.macs += p.macs;
    cost.energy_pj += flops * params_.energy_per_flop_pj +
                      dram_bytes * params_.dram_energy_per_byte_pj;
    // Pool layers: comparator flops roughly equal to their output count.
    if (p.kind == "pool") {
      cost.energy_pj += static_cast<double>(p.out_elements) *
                        params_.energy_per_flop_pj;
    }
  }
  // Busy-power floor over the whole inference (1 W*ns = 1e3 pJ).
  cost.energy_pj += params_.static_power_w * cost.latency_ns * 1e3;
  return cost;
}

}  // namespace cim::baseline
