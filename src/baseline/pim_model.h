// Near-memory PIM baseline (§I/§II.E: the paper distinguishes its CIM
// vision from two decades of processing-in-memory / near-memory designs —
// "most of that work was focused on stationary data with some processing
// collocated").
//
// Model: digital MAC units placed at the DRAM banks (HMC/Chameleon-class).
// Weights never cross the off-package interface — the internal bank
// bandwidth is an order of magnitude above the external bus — but the
// compute itself is still digital logic in a DRAM process: modest rate and
// energy per op well above a logic-process core. This is the middle point
// between the CPU and the CIM crossbars, and the §VI benches show exactly
// that ordering.
#pragma once

#include "baseline/compute_engine.h"

namespace cim::baseline {

struct PimParams {
  std::string name = "pim-near-memory";
  // Aggregate internal (bank-level) bandwidth.
  double internal_bandwidth_gbps = 480.0;
  // Digital MACs in DRAM process, all vaults together.
  double peak_gflops = 1000.0;
  double compute_efficiency = 0.6;  // streaming GEMV suits PIM well
  // Energy: DRAM-process logic ~2x logic-process energy/op, but bank-local
  // access is far cheaper than crossing the interface.
  double energy_per_flop_pj = 25.0;
  double internal_energy_per_byte_pj = 4.0;
  double static_power_w = 8.0;
  double layer_overhead_ns = 3000.0;  // command packets to the vaults

  [[nodiscard]] Status Validate() const {
    if (peak_gflops <= 0.0 || internal_bandwidth_gbps <= 0.0) {
      return InvalidArgument("PIM rates must be positive");
    }
    return Status::Ok();
  }
};

class PimModel final : public ComputeEngine {
 public:
  explicit PimModel(PimParams params = PimParams()) : params_(params) {}

  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] Expected<EngineCost> EstimateInference(
      const nn::Network& net) const override;

  [[nodiscard]] const PimParams& params() const { return params_; }

 private:
  PimParams params_;
};

}  // namespace cim::baseline
