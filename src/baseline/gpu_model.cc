#include "baseline/gpu_model.h"

#include <algorithm>

namespace cim::baseline {

Expected<EngineCost> GpuModel::EstimateInference(
    const nn::Network& net) const {
  if (Status s = params_.Validate(); !s.ok()) return s;
  auto profiles = nn::ProfileNetwork(net);
  if (!profiles.ok()) return profiles.status();

  const double total_weight_bytes =
      static_cast<double>(net.TotalWeights()) * 4.0;
  const bool weights_resident = total_weight_bytes <= params_.l2_bytes;

  EngineCost cost;
  for (const nn::LayerProfile& p : *profiles) {
    const double flops = 2.0 * static_cast<double>(p.macs);
    const double weight_bytes = static_cast<double>(p.weight_count) * 4.0;
    const double activation_bytes =
        static_cast<double>(p.in_elements + p.out_elements) * 4.0;

    // Batch-1 utilization: a layer with fewer MACs than the machine's
    // fill point runs proportionally slower per flop.
    const double utilization = std::clamp(
        static_cast<double>(p.macs) / params_.full_utilization_macs,
        params_.min_utilization, 1.0);
    const double effective_flops_per_ns = params_.peak_gflops * utilization;

    // GPU weights live in HBM; "resident" only means the small L2 shields
    // re-reads within one inference.
    const double dram_bytes =
        (weights_resident ? 0.0 : weight_bytes) + activation_bytes;

    const double compute_ns =
        flops > 0.0 ? flops / effective_flops_per_ns : 0.0;
    const double memory_ns = dram_bytes / params_.hbm_bandwidth_gbps;
    cost.latency_ns +=
        std::max(compute_ns, memory_ns) + params_.kernel_launch_ns;
    cost.dram_bytes += dram_bytes;
    cost.macs += p.macs;
    cost.energy_pj += flops * params_.energy_per_flop_pj +
                      dram_bytes * params_.hbm_energy_per_byte_pj;
  }
  cost.energy_pj += params_.static_power_w * cost.latency_ns * 1e3;
  return cost;
}

}  // namespace cim::baseline
