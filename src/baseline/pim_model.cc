#include "baseline/pim_model.h"

#include <algorithm>

namespace cim::baseline {

Expected<EngineCost> PimModel::EstimateInference(
    const nn::Network& net) const {
  if (Status s = params_.Validate(); !s.ok()) return s;
  auto profiles = nn::ProfileNetwork(net);
  if (!profiles.ok()) return profiles.status();

  EngineCost cost;
  const double effective_flops_per_ns =
      params_.peak_gflops * params_.compute_efficiency;  // GFLOP/s == flop/ns

  for (const nn::LayerProfile& p : *profiles) {
    const double flops = 2.0 * static_cast<double>(p.macs);
    // Weights stream bank-locally every inference (no cache hierarchy);
    // activations ride along.
    const double internal_bytes =
        static_cast<double>(p.weight_count) * 4.0 +
        static_cast<double>(p.in_elements + p.out_elements) * 4.0;

    const double compute_ns =
        flops > 0.0 ? flops / effective_flops_per_ns : 0.0;
    const double memory_ns =
        internal_bytes / params_.internal_bandwidth_gbps;
    cost.latency_ns +=
        std::max(compute_ns, memory_ns) + params_.layer_overhead_ns;
    // Bank-internal traffic never crosses the package: dram_bytes counts
    // only what leaves the stack (inputs in, outputs out).
    cost.dram_bytes +=
        static_cast<double>(p.in_elements + p.out_elements) * 1.0;
    cost.macs += p.macs;
    cost.energy_pj += flops * params_.energy_per_flop_pj +
                      internal_bytes * params_.internal_energy_per_byte_pj;
  }
  cost.energy_pj += params_.static_power_w * cost.latency_ns * 1e3;
  return cost;
}

}  // namespace cim::baseline
