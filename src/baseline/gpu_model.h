// GPU baseline: SIMT accelerator with HBM, evaluated with a roofline model
// plus kernel-launch overhead. Batch-1 inference under-utilizes a GPU badly
// (the effect behind the paper's "10-10^2 better latency than GPUs" claim):
// utilization is modelled as the fraction of the machine the layer's
// parallelism can fill.
#pragma once

#include "baseline/compute_engine.h"

namespace cim::baseline {

struct GpuParams {
  std::string name = "gpu-pascal";
  double peak_gflops = 10000.0;       // fp32
  double hbm_bandwidth_gbps = 700.0;
  double l2_bytes = 4.0 * 1024 * 1024;
  double kernel_launch_ns = 10000.0;  // per layer (driver + launch, batch-1)
  // Lanes that must be busy for full throughput; batch-1 layers smaller
  // than this run at proportional utilization.
  double full_utilization_macs = 2.0e6;
  double min_utilization = 0.02;
  // Energy.
  double energy_per_flop_pj = 15.0;
  double hbm_energy_per_byte_pj = 7.0;
  double static_power_w = 50.0;

  [[nodiscard]] Status Validate() const {
    if (peak_gflops <= 0 || hbm_bandwidth_gbps <= 0) {
      return InvalidArgument("GPU rates must be positive");
    }
    return Status::Ok();
  }
};

class GpuModel final : public ComputeEngine {
 public:
  explicit GpuModel(GpuParams params = GpuParams()) : params_(params) {}

  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] Expected<EngineCost> EstimateInference(
      const nn::Network& net) const override;

  [[nodiscard]] const GpuParams& params() const { return params_; }

 private:
  GpuParams params_;
};

}  // namespace cim::baseline
