// Von Neumann CPU baseline: an in-order multicore with a three-level cache
// hierarchy evaluated with a roofline model. This is the substitution for
// the paper's measured CPU testbed — the constants are server-class
// (Xeon-era, matching the paper's 2018 context) and the model captures the
// effect the paper's Fig 2 describes: performance on batch-1 inference is
// bounded by the memory system whenever the weights exceed the caches.
#pragma once

#include <memory>

#include "baseline/compute_engine.h"

namespace cim::baseline {

struct CpuParams {
  std::string name = "cpu-xeon";
  double peak_gflops = 500.0;       // fp32, all cores, FMA
  double dram_bandwidth_gbps = 60.0;
  double l3_bytes = 32.0 * 1024 * 1024;
  double l2_bytes = 256.0 * 1024;
  // Achievable fraction of peak on GEMV-class kernels.
  double compute_efficiency = 0.4;
  // Energy.
  double energy_per_flop_pj = 60.0;   // core + cache pipeline energy
  double dram_energy_per_byte_pj = 20.0;
  double static_power_w = 45.0;       // package busy-idle floor
  // Per-layer software overhead: framework op dispatch, im2col, memory
  // management. 2018-era batch-1 inference stacks (TensorFlow/Caffe) spent
  // tens of microseconds per op; the paper's CPU comparison includes that
  // software reality.
  double layer_overhead_ns = 20000.0;

  [[nodiscard]] Status Validate() const {
    if (peak_gflops <= 0 || dram_bandwidth_gbps <= 0) {
      return InvalidArgument("CPU rates must be positive");
    }
    return Status::Ok();
  }
};

class CpuModel final : public ComputeEngine {
 public:
  explicit CpuModel(CpuParams params = CpuParams()) : params_(params) {}

  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] Expected<EngineCost> EstimateInference(
      const nn::Network& net) const override;

  [[nodiscard]] const CpuParams& params() const { return params_; }

 private:
  CpuParams params_;
};

}  // namespace cim::baseline
