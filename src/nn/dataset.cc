#include "nn/dataset.h"

#include <algorithm>

namespace cim::nn {

Expected<Dataset> MakeClusterDataset(const DatasetParams& p, Rng& rng) {
  if (Status s = p.Validate(); !s.ok()) return s;
  Dataset data;
  data.dim = p.dim;
  data.classes = p.classes;

  std::vector<std::vector<double>> centers(p.classes,
                                           std::vector<double>(p.dim));
  for (auto& center : centers) {
    for (double& v : center) v = rng.Uniform(0.15, 0.85);
  }
  for (std::size_t cls = 0; cls < p.classes; ++cls) {
    for (std::size_t i = 0; i < p.samples_per_class; ++i) {
      std::vector<double> sample(p.dim);
      for (std::size_t d = 0; d < p.dim; ++d) {
        sample[d] = std::clamp(
            centers[cls][d] + rng.Gaussian(0.0, p.cluster_spread), 0.0, 1.0);
      }
      data.samples.push_back(std::move(sample));
      data.labels.push_back(cls);
    }
  }
  return data;
}

std::vector<std::vector<double>> OneHotTargets(const Dataset& data) {
  std::vector<std::vector<double>> targets;
  targets.reserve(data.size());
  for (std::size_t label : data.labels) {
    std::vector<double> t(data.classes, 0.0);
    t[label] = 1.0;
    targets.push_back(std::move(t));
  }
  return targets;
}

double Accuracy(const std::vector<std::vector<double>>& scores,
                const std::vector<std::size_t>& labels) {
  if (scores.empty() || scores.size() != labels.size()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < scores[i].size(); ++c) {
      if (scores[i][c] > scores[i][best]) best = c;
    }
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

}  // namespace cim::nn
