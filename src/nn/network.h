// Neural-network description and float reference inference (golden model).
//
// Networks are the §VI workload: the DPE maps these layer descriptions onto
// crossbar tiles, the baselines execute them on roofline CPU/GPU models, and
// this module's float forward pass is the accuracy reference.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/tensor.h"

namespace cim::nn {

enum class Activation : std::uint8_t { kNone = 0, kRelu, kSigmoid };

// Fully connected: y = W^T x + b. Weights stored row-major [in x out].
struct DenseLayer {
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  std::vector<double> weights;
  std::vector<double> bias;
  Activation activation = Activation::kRelu;
};

// 2-D convolution over CHW tensors, square kernel, valid-or-same padding.
struct Conv2dLayer {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;
  // Weights [out_c][in_c][k][k] flattened; bias [out_c].
  std::vector<double> weights;
  std::vector<double> bias;
  Activation activation = Activation::kRelu;
};

// Max pooling over CHW tensors.
struct MaxPoolLayer {
  std::size_t window = 2;
  std::size_t stride = 2;
};

using Layer = std::variant<DenseLayer, Conv2dLayer, MaxPoolLayer>;

struct Network {
  std::string name;
  // Input shape: {features} for MLPs, {C, H, W} for CNNs.
  std::vector<std::size_t> input_shape;
  std::vector<Layer> layers;

  [[nodiscard]] Status Validate() const;

  // Total multiply-accumulate count for one inference (used by the
  // analytical models and baselines).
  [[nodiscard]] std::uint64_t TotalMacs() const;
  // Total weight parameters.
  [[nodiscard]] std::uint64_t TotalWeights() const;
};

// Float reference forward pass.
[[nodiscard]] Expected<Tensor> Forward(const Network& net,
                                       const Tensor& input);

// Per-layer operation/traffic profile used by the analytical cost models.
struct LayerProfile {
  std::string kind;            // "dense" / "conv" / "pool"
  std::uint64_t macs = 0;
  std::uint64_t weight_count = 0;
  std::uint64_t in_elements = 0;
  std::uint64_t out_elements = 0;
};
[[nodiscard]] Expected<std::vector<LayerProfile>> ProfileNetwork(
    const Network& net);

// Shape walk: result[i] is the shape layer i consumes (after the implicit
// conv→dense flatten) and result[layers.size()] is the network output shape.
// The fabric partitioner uses this to give each pipeline stage its input
// shape without re-deriving layer semantics.
[[nodiscard]] Expected<std::vector<std::vector<std::size_t>>> LayerInputShapes(
    const Network& net);

// Slice a dense layer to the output features [begin, begin + count): weight
// columns and bias entries, same activation. Feeding the full input through
// each slice and concatenating the outputs in order reproduces the unsliced
// layer exactly — column math is independent of its neighbors — which is
// what makes fabric column-splits bit-exact on noise-free devices.
[[nodiscard]] Expected<DenseLayer> SliceDenseOutputs(const DenseLayer& layer,
                                                     std::size_t begin,
                                                     std::size_t count);

// --- builders -------------------------------------------------------------

// MLP with the given layer widths (first entry = input features), random
// weights in [-scale, scale], ReLU hidden activations, no final activation.
[[nodiscard]] Network BuildMlp(const std::string& name,
                               const std::vector<std::size_t>& widths,
                               Rng& rng, double scale = 0.5);

// Small LeNet-style CNN for CHW inputs.
[[nodiscard]] Network BuildCnn(const std::string& name, std::size_t channels,
                               std::size_t height, std::size_t width,
                               std::size_t classes, Rng& rng);

// The §VI sweep: a family of networks from tiny to large.
[[nodiscard]] std::vector<Network> BuildBenchmarkSuite(Rng& rng);

}  // namespace cim::nn
