#include "nn/network.h"

#include <algorithm>
#include <cmath>

namespace cim::nn {
namespace {

double Activate(double v, Activation act) {
  switch (act) {
    case Activation::kNone: return v;
    case Activation::kRelu: return std::max(v, 0.0);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

// Output spatial size of a conv/pool stage.
std::size_t OutDim(std::size_t in, std::size_t kernel, std::size_t stride,
                   std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

struct ShapeVisitor {
  // Returns the output shape for the given input shape, or empty on error.
  std::vector<std::size_t> operator()(const DenseLayer& l) const {
    if (in.size() != 1 || in[0] != l.in_features) return {};
    return {l.out_features};
  }
  std::vector<std::size_t> operator()(const Conv2dLayer& l) const {
    if (in.size() != 3 || in[0] != l.in_channels) return {};
    if (in[1] + 2 * l.padding < l.kernel || in[2] + 2 * l.padding < l.kernel) {
      return {};
    }
    return {l.out_channels, OutDim(in[1], l.kernel, l.stride, l.padding),
            OutDim(in[2], l.kernel, l.stride, l.padding)};
  }
  std::vector<std::size_t> operator()(const MaxPoolLayer& l) const {
    if (in.size() != 3 || in[1] < l.window || in[2] < l.window) return {};
    return {in[0], OutDim(in[1], l.window, l.stride, 0),
            OutDim(in[2], l.window, l.stride, 0)};
  }
  std::vector<std::size_t> in;
};

}  // namespace

Status Network::Validate() const {
  if (input_shape.empty()) return InvalidArgument("missing input shape");
  std::vector<std::size_t> shape = input_shape;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    // A dense layer after a conv stack implicitly flattens.
    if (std::holds_alternative<DenseLayer>(layers[i]) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    std::vector<std::size_t> next =
        std::visit(ShapeVisitor{shape}, layers[i]);
    if (next.empty()) {
      return InvalidArgument("layer " + std::to_string(i) +
                             " incompatible with input shape");
    }
    // Check weight array sizes.
    if (const auto* dense = std::get_if<DenseLayer>(&layers[i])) {
      if (dense->weights.size() != dense->in_features * dense->out_features ||
          dense->bias.size() != dense->out_features) {
        return InvalidArgument("dense layer " + std::to_string(i) +
                               " weight/bias size mismatch");
      }
    }
    if (const auto* conv = std::get_if<Conv2dLayer>(&layers[i])) {
      if (conv->weights.size() != conv->out_channels * conv->in_channels *
                                      conv->kernel * conv->kernel ||
          conv->bias.size() != conv->out_channels) {
        return InvalidArgument("conv layer " + std::to_string(i) +
                               " weight/bias size mismatch");
      }
    }
    shape = std::move(next);
  }
  return Status::Ok();
}

std::uint64_t Network::TotalMacs() const {
  std::uint64_t macs = 0;
  std::vector<std::size_t> shape = input_shape;
  for (const Layer& layer : layers) {
    if (std::holds_alternative<DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      macs += static_cast<std::uint64_t>(dense->in_features) *
              dense->out_features;
      shape = {dense->out_features};
    } else if (const auto* conv = std::get_if<Conv2dLayer>(&layer)) {
      const std::size_t oh = OutDim(shape[1], conv->kernel, conv->stride,
                                    conv->padding);
      const std::size_t ow = OutDim(shape[2], conv->kernel, conv->stride,
                                    conv->padding);
      macs += static_cast<std::uint64_t>(oh) * ow * conv->out_channels *
              conv->in_channels * conv->kernel * conv->kernel;
      shape = {conv->out_channels, oh, ow};
    } else if (const auto* pool = std::get_if<MaxPoolLayer>(&layer)) {
      shape = {shape[0], OutDim(shape[1], pool->window, pool->stride, 0),
               OutDim(shape[2], pool->window, pool->stride, 0)};
    }
  }
  return macs;
}

std::uint64_t Network::TotalWeights() const {
  std::uint64_t weights = 0;
  for (const Layer& layer : layers) {
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      weights += dense->weights.size() + dense->bias.size();
    } else if (const auto* conv = std::get_if<Conv2dLayer>(&layer)) {
      weights += conv->weights.size() + conv->bias.size();
    }
  }
  return weights;
}

Expected<Tensor> Forward(const Network& net, const Tensor& input) {
  if (Status s = net.Validate(); !s.ok()) return s;
  if (input.shape() != net.input_shape) {
    return InvalidArgument("input shape mismatch");
  }
  Tensor current = input;
  for (const Layer& layer : net.layers) {
    if (std::holds_alternative<DenseLayer>(layer) && current.rank() == 3) {
      current = Tensor({current.size()}, current.vec());
    }
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      Tensor out({dense->out_features});
      for (std::size_t o = 0; o < dense->out_features; ++o) {
        double sum = dense->bias[o];
        for (std::size_t i = 0; i < dense->in_features; ++i) {
          sum += current[i] * dense->weights[i * dense->out_features + o];
        }
        out[o] = Activate(sum, dense->activation);
      }
      current = std::move(out);
    } else if (const auto* conv = std::get_if<Conv2dLayer>(&layer)) {
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, conv->kernel, conv->stride,
                                    conv->padding);
      const std::size_t ow = OutDim(iw, conv->kernel, conv->stride,
                                    conv->padding);
      Tensor out({conv->out_channels, oh, ow});
      const std::size_t k = conv->kernel;
      for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double sum = conv->bias[oc];
            for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
              for (std::size_t ky = 0; ky < k; ++ky) {
                for (std::size_t kx = 0; kx < k; ++kx) {
                  const std::int64_t iy =
                      static_cast<std::int64_t>(oy * conv->stride + ky) -
                      static_cast<std::int64_t>(conv->padding);
                  const std::int64_t ix =
                      static_cast<std::int64_t>(ox * conv->stride + kx) -
                      static_cast<std::int64_t>(conv->padding);
                  if (iy < 0 || ix < 0 ||
                      iy >= static_cast<std::int64_t>(ih) ||
                      ix >= static_cast<std::int64_t>(iw)) {
                    continue;
                  }
                  const double w =
                      conv->weights[((oc * conv->in_channels + ic) * k + ky) *
                                        k +
                                    kx];
                  sum += w * current.at3(ic, static_cast<std::size_t>(iy),
                                         static_cast<std::size_t>(ix));
                }
              }
            }
            out.at3(oc, oy, ox) = Activate(sum, conv->activation);
          }
        }
      }
      current = std::move(out);
    } else if (const auto* pool = std::get_if<MaxPoolLayer>(&layer)) {
      const std::size_t channels = current.shape()[0];
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, pool->window, pool->stride, 0);
      const std::size_t ow = OutDim(iw, pool->window, pool->stride, 0);
      Tensor out({channels, oh, ow});
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double best = -1e300;
            for (std::size_t ky = 0; ky < pool->window; ++ky) {
              for (std::size_t kx = 0; kx < pool->window; ++kx) {
                best = std::max(best, current.at3(c, oy * pool->stride + ky,
                                                  ox * pool->stride + kx));
              }
            }
            out.at3(c, oy, ox) = best;
          }
        }
      }
      current = std::move(out);
    }
  }
  return current;
}

Expected<std::vector<LayerProfile>> ProfileNetwork(const Network& net) {
  if (Status s = net.Validate(); !s.ok()) return s;
  std::vector<LayerProfile> profiles;
  std::vector<std::size_t> shape = net.input_shape;
  const auto elems = [](const std::vector<std::size_t>& s) {
    std::size_t n = 1;
    for (std::size_t d : s) n *= d;
    return static_cast<std::uint64_t>(n);
  };
  for (const Layer& layer : net.layers) {
    if (std::holds_alternative<DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    LayerProfile p;
    p.in_elements = elems(shape);
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      p.kind = "dense";
      p.macs = static_cast<std::uint64_t>(dense->in_features) *
               dense->out_features;
      p.weight_count = dense->weights.size() + dense->bias.size();
      shape = {dense->out_features};
    } else if (const auto* conv = std::get_if<Conv2dLayer>(&layer)) {
      const std::size_t oh =
          OutDim(shape[1], conv->kernel, conv->stride, conv->padding);
      const std::size_t ow =
          OutDim(shape[2], conv->kernel, conv->stride, conv->padding);
      p.kind = "conv";
      p.macs = static_cast<std::uint64_t>(oh) * ow * conv->out_channels *
               conv->in_channels * conv->kernel * conv->kernel;
      p.weight_count = conv->weights.size() + conv->bias.size();
      shape = {conv->out_channels, oh, ow};
    } else if (const auto* pool = std::get_if<MaxPoolLayer>(&layer)) {
      p.kind = "pool";
      shape = {shape[0], OutDim(shape[1], pool->window, pool->stride, 0),
               OutDim(shape[2], pool->window, pool->stride, 0)};
    }
    p.out_elements = elems(shape);
    profiles.push_back(std::move(p));
  }
  return profiles;
}

Expected<std::vector<std::vector<std::size_t>>> LayerInputShapes(
    const Network& net) {
  if (Status s = net.Validate(); !s.ok()) return s;
  std::vector<std::vector<std::size_t>> shapes;
  shapes.reserve(net.layers.size() + 1);
  std::vector<std::size_t> shape = net.input_shape;
  for (const Layer& layer : net.layers) {
    if (std::holds_alternative<DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    shapes.push_back(shape);
    shape = std::visit(ShapeVisitor{shape}, layer);
  }
  shapes.push_back(std::move(shape));
  return shapes;
}

Expected<DenseLayer> SliceDenseOutputs(const DenseLayer& layer,
                                       std::size_t begin, std::size_t count) {
  if (count == 0) return InvalidArgument("empty dense slice");
  if (begin + count > layer.out_features) {
    return OutOfRange("dense slice past out_features");
  }
  if (layer.weights.size() != layer.in_features * layer.out_features ||
      layer.bias.size() != layer.out_features) {
    return InvalidArgument("dense layer weight/bias size mismatch");
  }
  DenseLayer slice;
  slice.in_features = layer.in_features;
  slice.out_features = count;
  slice.activation = layer.activation;
  slice.weights.resize(layer.in_features * count);
  for (std::size_t i = 0; i < layer.in_features; ++i) {
    const std::size_t src = i * layer.out_features + begin;
    const std::size_t dst = i * count;
    for (std::size_t o = 0; o < count; ++o) {
      slice.weights[dst + o] = layer.weights[src + o];
    }
  }
  slice.bias.assign(layer.bias.begin() + static_cast<std::ptrdiff_t>(begin),
                    layer.bias.begin() +
                        static_cast<std::ptrdiff_t>(begin + count));
  return slice;
}

Network BuildMlp(const std::string& name,
                 const std::vector<std::size_t>& widths, Rng& rng,
                 double scale) {
  Network net;
  net.name = name;
  net.input_shape = {widths.front()};
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    DenseLayer layer;
    layer.in_features = widths[i];
    layer.out_features = widths[i + 1];
    layer.weights.resize(layer.in_features * layer.out_features);
    layer.bias.resize(layer.out_features);
    for (auto& w : layer.weights) w = rng.Uniform(-scale, scale);
    for (auto& b : layer.bias) b = rng.Uniform(-scale / 10, scale / 10);
    layer.activation = (i + 2 == widths.size()) ? Activation::kNone
                                                : Activation::kRelu;
    net.layers.emplace_back(std::move(layer));
  }
  return net;
}

Network BuildCnn(const std::string& name, std::size_t channels,
                 std::size_t height, std::size_t width, std::size_t classes,
                 Rng& rng) {
  Network net;
  net.name = name;
  net.input_shape = {channels, height, width};

  const auto make_conv = [&rng](std::size_t in_c, std::size_t out_c,
                                std::size_t k) {
    Conv2dLayer conv;
    conv.in_channels = in_c;
    conv.out_channels = out_c;
    conv.kernel = k;
    conv.padding = k / 2;
    conv.weights.resize(out_c * in_c * k * k);
    conv.bias.resize(out_c);
    const double fan_in = static_cast<double>(in_c * k * k);
    const double scale = std::sqrt(2.0 / fan_in);
    for (auto& w : conv.weights) w = rng.Gaussian(0.0, scale);
    for (auto& b : conv.bias) b = 0.0;
    return conv;
  };

  net.layers.emplace_back(make_conv(channels, 8, 3));
  net.layers.emplace_back(MaxPoolLayer{});
  net.layers.emplace_back(make_conv(8, 16, 3));
  net.layers.emplace_back(MaxPoolLayer{});

  const std::size_t flat = 16 * (height / 4) * (width / 4);
  DenseLayer fc1;
  fc1.in_features = flat;
  fc1.out_features = 64;
  fc1.weights.resize(flat * 64);
  fc1.bias.resize(64);
  for (auto& w : fc1.weights) w = rng.Uniform(-0.1, 0.1);
  for (auto& b : fc1.bias) b = 0.0;
  net.layers.emplace_back(std::move(fc1));

  DenseLayer fc2;
  fc2.in_features = 64;
  fc2.out_features = classes;
  fc2.weights.resize(64 * classes);
  fc2.bias.resize(classes);
  for (auto& w : fc2.weights) w = rng.Uniform(-0.1, 0.1);
  for (auto& b : fc2.bias) b = 0.0;
  fc2.activation = Activation::kNone;
  net.layers.emplace_back(std::move(fc2));
  return net;
}

std::vector<Network> BuildBenchmarkSuite(Rng& rng) {
  std::vector<Network> suite;
  suite.push_back(BuildMlp("mlp-tiny", {16, 32, 10}, rng));
  suite.push_back(BuildMlp("mlp-small", {64, 128, 64, 10}, rng));
  suite.push_back(BuildMlp("mlp-mnist", {784, 256, 128, 10}, rng));
  suite.push_back(BuildMlp("mlp-wide", {1024, 2048, 1024, 100}, rng));
  suite.push_back(BuildCnn("cnn-small", 1, 28, 28, 10, rng));
  suite.push_back(BuildCnn("cnn-cifar", 3, 32, 32, 10, rng));
  return suite;
}

}  // namespace cim::nn
