// Synthetic classification data for accuracy experiments.
//
// Gaussian clusters in [0,1]^dim, one per class — the substitution for the
// image datasets the DPE lineage evaluates on: accuracy experiments here
// measure the *degradation* caused by quantization, read noise and drift,
// which only needs a separable task, not real images.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace cim::nn {

struct Dataset {
  std::size_t dim = 0;
  std::size_t classes = 0;
  std::vector<std::vector<double>> samples;
  std::vector<std::size_t> labels;

  [[nodiscard]] std::size_t size() const { return samples.size(); }
};

struct DatasetParams {
  std::size_t dim = 16;
  std::size_t classes = 4;
  std::size_t samples_per_class = 32;
  double cluster_spread = 0.08;  // sigma around each class center

  [[nodiscard]] Status Validate() const {
    if (dim == 0 || classes < 2 || samples_per_class == 0) {
      return InvalidArgument("bad dataset shape");
    }
    if (cluster_spread <= 0.0) {
      return InvalidArgument("cluster_spread must be positive");
    }
    return Status::Ok();
  }
};

// Generate the dataset; the class centers are themselves random in
// [0.15, 0.85]^dim so features stay in the crossbar's input range after
// noise.
[[nodiscard]] Expected<Dataset> MakeClusterDataset(const DatasetParams& p,
                                                   Rng& rng);

// One-hot targets for training.
[[nodiscard]] std::vector<std::vector<double>> OneHotTargets(
    const Dataset& data);

// Classification accuracy of arbitrary per-sample scores against labels.
[[nodiscard]] double Accuracy(
    const std::vector<std::vector<double>>& scores,
    const std::vector<std::size_t>& labels);

}  // namespace cim::nn
