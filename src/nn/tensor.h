// Minimal dense tensor used by the neural-network golden model and the DPE
// mapper. Row-major storage, rank <= 4 (N/C/H/W style layouts are the
// caller's convention).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/status.h"

namespace cim::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)),
        data_(std::accumulate(shape_.begin(), shape_.end(),
                              std::size_t{1}, std::multiplies<>()),
              0.0) {}
  Tensor(std::vector<std::size_t> shape, std::vector<double> data)
      : shape_(std::move(shape)), data_(std::move(data)) {}

  [[nodiscard]] const std::vector<std::size_t>& shape() const {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool valid() const {
    const std::size_t expected =
        std::accumulate(shape_.begin(), shape_.end(), std::size_t{1},
                        std::multiplies<>());
    return expected == data_.size();
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::vector<double>& vec() { return data_; }
  [[nodiscard]] const std::vector<double>& vec() const { return data_; }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  // 3-D accessor for (channel, row, col) layouts.
  [[nodiscard]] double& at3(std::size_t c, std::size_t h, std::size_t w) {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  [[nodiscard]] double at3(std::size_t c, std::size_t h,
                           std::size_t w) const {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

}  // namespace cim::nn
