#include "logic/stateful_logic.h"

#include <span>

namespace cim::logic {

Expected<BulkBitwiseEngine> BulkBitwiseEngine::Create(const Params& params) {
  if (Status s = params.Validate(); !s.ok()) return s;
  return BulkBitwiseEngine(params);
}

BulkBitwiseEngine::BulkBitwiseEngine(const Params& params)
    : params_(params),
      storage_(params.rows * (params.bits_per_row / 64), 0) {}

Status BulkBitwiseEngine::WriteRow(std::size_t row,
                                   std::span<const std::uint64_t> words) {
  if (row >= params_.rows) return OutOfRange("row index");
  if (words.size() != words_per_row()) {
    return InvalidArgument("row width mismatch");
  }
  const std::size_t base = row * words_per_row();
  for (std::size_t i = 0; i < words.size(); ++i) storage_[base + i] = words[i];
  cost_.latency_ns += params_.row_op_latency.ns;
  cost_.energy_pj += params_.row_op_energy.pj;
  ++cost_.operations;
  return Status::Ok();
}

Expected<std::vector<std::uint64_t>> BulkBitwiseEngine::ReadRow(
    std::size_t row) const {
  if (row >= params_.rows) return OutOfRange("row index");
  const std::size_t base = row * words_per_row();
  return std::vector<std::uint64_t>(storage_.begin() + base,
                                    storage_.begin() + base + words_per_row());
}

template <typename Fn>
Status BulkBitwiseEngine::RowOp(std::size_t a, std::size_t b, std::size_t dst,
                                Fn&& fn) {
  if (a >= params_.rows || b >= params_.rows || dst >= params_.rows) {
    return OutOfRange("row index");
  }
  const std::size_t wa = a * words_per_row();
  const std::size_t wb = b * words_per_row();
  const std::size_t wd = dst * words_per_row();
  for (std::size_t i = 0; i < words_per_row(); ++i) {
    storage_[wd + i] = fn(storage_[wa + i], storage_[wb + i]);
  }
  cost_.latency_ns += params_.row_op_latency.ns;
  cost_.energy_pj += params_.row_op_energy.pj;
  ++cost_.operations;
  return Status::Ok();
}

Status BulkBitwiseEngine::And(std::size_t a, std::size_t b, std::size_t dst) {
  return RowOp(a, b, dst,
               [](std::uint64_t x, std::uint64_t y) { return x & y; });
}

Status BulkBitwiseEngine::Or(std::size_t a, std::size_t b, std::size_t dst) {
  return RowOp(a, b, dst,
               [](std::uint64_t x, std::uint64_t y) { return x | y; });
}

Status BulkBitwiseEngine::Xor(std::size_t a, std::size_t b, std::size_t dst) {
  return RowOp(a, b, dst,
               [](std::uint64_t x, std::uint64_t y) { return x ^ y; });
}

Status BulkBitwiseEngine::Not(std::size_t a, std::size_t dst) {
  return RowOp(a, a, dst,
               [](std::uint64_t x, std::uint64_t) { return ~x; });
}

}  // namespace cim::logic
