#include "logic/arith.h"

namespace cim::logic {
namespace {

// Scratch register layout shared by both adder families.
constexpr std::size_t kRegA = 0;
constexpr std::size_t kRegB = 1;
constexpr std::size_t kRegCin = 2;
constexpr std::size_t kRegT1 = 3;  // t1..t7 gate outputs
constexpr std::size_t kRegT4 = 6;
constexpr std::size_t kRegT5 = 7;
constexpr std::size_t kRegSum = 10;
constexpr std::size_t kRegCout = 11;
constexpr std::size_t kMinRegisters = 16;

}  // namespace

Expected<AdderResult> ImplyRippleAdd(ImplyEngine& engine, std::uint64_t a,
                                     std::uint64_t b, int bits) {
  if (bits < 1 || bits > 64) return InvalidArgument("bits must be in [1,64]");
  if (engine.register_count() < kMinRegisters) {
    return InvalidArgument("ImplyRippleAdd needs >= 16 registers");
  }
  engine.ResetCost();

  AdderResult result;
  bool carry = false;
  for (int i = 0; i < bits; ++i) {
    const bool abit = (a >> i) & 1;
    const bool bbit = (b >> i) & 1;
    if (Status s = engine.WriteBit(kRegA, abit); !s.ok()) return s;
    if (Status s = engine.WriteBit(kRegB, bbit); !s.ok()) return s;
    if (Status s = engine.WriteBit(kRegCin, carry); !s.ok()) return s;

    // NAND-decomposed full adder (9 gates, 27 cycles):
    //   n1 = NAND(a,b); n2 = NAND(a,n1); n3 = NAND(b,n1); n4 = NAND(n2,n3)
    //   n5 = NAND(n4,c); n6 = NAND(n4,n5); n7 = NAND(c,n5)
    //   sum = NAND(n6,n7); cout = NAND(n1,n5)
    if (Status s = engine.Nand(kRegA, kRegB, kRegT1); !s.ok()) return s;
    if (Status s = engine.Nand(kRegA, kRegT1, kRegT1 + 1); !s.ok()) return s;
    if (Status s = engine.Nand(kRegB, kRegT1, kRegT1 + 2); !s.ok()) return s;
    if (Status s = engine.Nand(kRegT1 + 1, kRegT1 + 2, kRegT4); !s.ok()) {
      return s;
    }
    if (Status s = engine.Nand(kRegT4, kRegCin, kRegT5); !s.ok()) return s;
    if (Status s = engine.Nand(kRegT4, kRegT5, kRegT5 + 1); !s.ok()) return s;
    if (Status s = engine.Nand(kRegCin, kRegT5, kRegT5 + 2); !s.ok()) return s;
    if (Status s = engine.Nand(kRegT5 + 1, kRegT5 + 2, kRegSum); !s.ok()) {
      return s;
    }
    if (Status s = engine.Nand(kRegT1, kRegT5, kRegCout); !s.ok()) return s;

    auto sum_bit = engine.ReadBit(kRegSum);
    auto carry_bit = engine.ReadBit(kRegCout);
    if (!sum_bit.ok()) return sum_bit.status();
    if (!carry_bit.ok()) return carry_bit.status();
    if (*sum_bit) result.sum |= std::uint64_t{1} << i;
    carry = *carry_bit;
  }
  result.carry_out = carry;
  result.cost = engine.cost();
  return result;
}

Expected<AdderResult> MagicRippleAdd(MagicNorEngine& engine, std::uint64_t a,
                                     std::uint64_t b, int bits) {
  if (bits < 1 || bits > 64) return InvalidArgument("bits must be in [1,64]");
  if (engine.register_count() < kMinRegisters) {
    return InvalidArgument("MagicRippleAdd needs >= 16 registers");
  }
  engine.ResetCost();

  // Each MAGIC NOR needs its output latch pre-set: Init + Nor = 2 cycles.
  const auto nor = [&engine](std::size_t x, std::size_t y,
                             std::size_t dst) -> Status {
    if (Status s = engine.Init(dst); !s.ok()) return s;
    return engine.Nor(x, y, dst);
  };

  AdderResult result;
  bool carry = false;
  for (int i = 0; i < bits; ++i) {
    const bool abit = (a >> i) & 1;
    const bool bbit = (b >> i) & 1;
    if (Status s = engine.WriteBit(kRegA, abit); !s.ok()) return s;
    if (Status s = engine.WriteBit(kRegB, bbit); !s.ok()) return s;
    if (Status s = engine.WriteBit(kRegCin, carry); !s.ok()) return s;

    // NOR-decomposed full adder (9 gates):
    //   t1 = NOR(a,b); t2 = NOR(a,t1); t3 = NOR(b,t1); t4 = NOR(t2,t3)
    //     (t4 == XNOR(a,b))
    //   t5 = NOR(t4,c); t6 = NOR(t4,t5); t7 = NOR(c,t5)
    //   sum = NOR(t6,t7) == XNOR(t4,c); cout = NOR(t1,t5)
    if (Status s = nor(kRegA, kRegB, kRegT1); !s.ok()) return s;
    if (Status s = nor(kRegA, kRegT1, kRegT1 + 1); !s.ok()) return s;
    if (Status s = nor(kRegB, kRegT1, kRegT1 + 2); !s.ok()) return s;
    if (Status s = nor(kRegT1 + 1, kRegT1 + 2, kRegT4); !s.ok()) return s;
    if (Status s = nor(kRegT4, kRegCin, kRegT5); !s.ok()) return s;
    if (Status s = nor(kRegT4, kRegT5, kRegT5 + 1); !s.ok()) return s;
    if (Status s = nor(kRegCin, kRegT5, kRegT5 + 2); !s.ok()) return s;
    if (Status s = nor(kRegT5 + 1, kRegT5 + 2, kRegSum); !s.ok()) return s;
    if (Status s = nor(kRegT1, kRegT5, kRegCout); !s.ok()) return s;

    auto sum_bit = engine.ReadBit(kRegSum);
    auto carry_bit = engine.ReadBit(kRegCout);
    if (!sum_bit.ok()) return sum_bit.status();
    if (!carry_bit.ok()) return carry_bit.status();
    if (*sum_bit) result.sum |= std::uint64_t{1} << i;
    carry = *carry_bit;
  }
  result.carry_out = carry;
  result.cost = engine.cost();
  return result;
}

Expected<bool> BulkRowsEqual(BulkBitwiseEngine& engine, std::size_t row_a,
                             std::size_t row_b, std::size_t scratch) {
  if (Status s = engine.Xor(row_a, row_b, scratch); !s.ok()) return s;
  auto row = engine.ReadRow(scratch);
  if (!row.ok()) return row.status();
  for (std::uint64_t word : *row) {
    if (word != 0) return false;
  }
  return true;
}

}  // namespace cim::logic
