// Arithmetic circuits synthesized from stateful-logic primitives.
//
// Demonstrates the §III.A claim that full arithmetic builds on either
// primitive family, and exposes the per-family cycle cost so benchmarks can
// compare them:
//   * IMPLY family: full adder = 9 NAND gates = 27 array cycles,
//   * MAGIC family: full adder = 9 NOR gates, each needing an output
//     pre-set, = 18 array cycles,
// plus operand-load cycles in both cases.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/status.h"
#include "logic/stateful_logic.h"

namespace cim::logic {

struct AdderResult {
  std::uint64_t sum = 0;
  bool carry_out = false;
  CostReport cost;
};

// Ripple-carry add of two `bits`-wide operands on an ImplyEngine.
// The engine needs at least 16 registers.
[[nodiscard]] Expected<AdderResult> ImplyRippleAdd(ImplyEngine& engine,
                                                   std::uint64_t a,
                                                   std::uint64_t b, int bits);

// The same adder on a MagicNorEngine (at least 16 registers).
[[nodiscard]] Expected<AdderResult> MagicRippleAdd(MagicNorEngine& engine,
                                                   std::uint64_t a,
                                                   std::uint64_t b, int bits);

// Row-parallel equality compare on a BulkBitwiseEngine: XOR the two rows,
// OR-reduce the result. Uses rows `scratch` and `scratch+1` as temporaries.
[[nodiscard]] Expected<bool> BulkRowsEqual(BulkBitwiseEngine& engine,
                                           std::size_t row_a,
                                           std::size_t row_b,
                                           std::size_t scratch);

}  // namespace cim::logic
