#include "logic/associative.h"

#include <span>

namespace cim::logic {

Expected<TcamArray> TcamArray::Create(const TcamParams& params) {
  if (Status s = params.Validate(); !s.ok()) return s;
  return TcamArray(params);
}

TcamArray::TcamArray(const TcamParams& params)
    : params_(params),
      cells_(params.rows * params.width_bits, Ternary::kDontCare),
      valid_(params.rows, 0) {}

Status TcamArray::WriteRow(std::size_t row, std::span<const Ternary> word) {
  if (row >= params_.rows) return OutOfRange("row index");
  if (word.size() != params_.width_bits) {
    return InvalidArgument("word width mismatch");
  }
  for (std::size_t b = 0; b < word.size(); ++b) {
    cells_[row * params_.width_bits + b] = word[b];
  }
  valid_[row] = 1;
  cost_.latency_ns += params_.write_latency.ns;
  cost_.energy_pj +=
      params_.write_energy_per_cell.pj * static_cast<double>(word.size());
  ++cost_.operations;
  return Status::Ok();
}

Status TcamArray::WriteRowBits(std::size_t row, std::uint64_t key,
                               std::uint64_t care_mask) {
  if (params_.width_bits > 64) {
    return InvalidArgument("WriteRowBits requires width <= 64");
  }
  std::vector<Ternary> word(params_.width_bits);
  for (std::size_t b = 0; b < params_.width_bits; ++b) {
    if (((care_mask >> b) & 1) == 0) {
      word[b] = Ternary::kDontCare;
    } else {
      word[b] = ((key >> b) & 1) ? Ternary::kOne : Ternary::kZero;
    }
  }
  return WriteRow(row, word);
}

Status TcamArray::ClearRow(std::size_t row) {
  if (row >= params_.rows) return OutOfRange("row index");
  valid_[row] = 0;
  cost_.latency_ns += params_.write_latency.ns;
  ++cost_.operations;
  return Status::Ok();
}

SearchResult TcamArray::Search(std::span<const Ternary> key) {
  SearchResult result;
  if (key.size() != params_.width_bits) return result;
  // One parallel cycle: every valid cell evaluates against the key.
  result.cost.latency_ns = params_.search_latency.ns;
  result.cost.energy_pj = params_.search_energy_per_cell.pj *
                          static_cast<double>(params_.rows) *
                          static_cast<double>(params_.width_bits);
  result.cost.operations = params_.rows;
  for (std::size_t r = 0; r < params_.rows; ++r) {
    if (!valid_[r]) continue;
    bool match = true;
    for (std::size_t b = 0; b < params_.width_bits && match; ++b) {
      const Ternary cell = cells_[r * params_.width_bits + b];
      const Ternary probe = key[b];
      if (cell == Ternary::kDontCare || probe == Ternary::kDontCare) continue;
      if (cell != probe) match = false;
    }
    if (match) result.matches.push_back(r);
  }
  cost_ += result.cost;
  return result;
}

SearchResult TcamArray::SearchBits(std::uint64_t key) {
  std::vector<Ternary> word(params_.width_bits);
  for (std::size_t b = 0; b < params_.width_bits; ++b) {
    word[b] = ((key >> b) & 1) ? Ternary::kOne : Ternary::kZero;
  }
  return Search(word);
}

Status TcamArray::WriteToMatches(const SearchResult& matches,
                                 std::size_t bit_offset, std::uint64_t value,
                                 int value_bits) {
  if (value_bits < 1 || value_bits > 64) {
    return InvalidArgument("value_bits must be in [1, 64]");
  }
  if (bit_offset + static_cast<std::size_t>(value_bits) >
      params_.width_bits) {
    return OutOfRange("value field outside row width");
  }
  // One row-parallel conditional-write cycle.
  cost_.latency_ns += params_.write_latency.ns;
  cost_.energy_pj += params_.write_energy_per_cell.pj *
                     static_cast<double>(matches.matches.size()) *
                     static_cast<double>(value_bits);
  ++cost_.operations;
  for (std::size_t row : matches.matches) {
    if (row >= params_.rows || !valid_[row]) continue;
    for (int b = 0; b < value_bits; ++b) {
      cells_[row * params_.width_bits + bit_offset + b] =
          ((value >> b) & 1) ? Ternary::kOne : Ternary::kZero;
    }
  }
  return Status::Ok();
}

}  // namespace cim::logic
