// Associative processing: content-addressable memory (§III.A cites TCAM
// and associative processors as one of the four CIM hardware families).
//
// A resistive TCAM array compares a search key against every stored row in
// a single cycle — the row-parallel "compute where the data is" primitive.
// Each row is a word of ternary cells (0 / 1 / don't-care). The model
// includes per-search energy that scales with array size (every cell
// participates in a match) and an optional associative-processor mode:
// bulk conditional writes to all matching rows (the Yavits-style AP the
// paper cites).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace cim::logic {

enum class Ternary : std::uint8_t { kZero = 0, kOne = 1, kDontCare = 2 };

struct TcamParams {
  std::size_t rows = 256;
  std::size_t width_bits = 64;
  // One search = one match-line pre-charge + evaluate across all cells.
  TimeNs search_latency{5.0};
  EnergyPj search_energy_per_cell{0.02};
  // Writing one row (ternary memristor pair per cell).
  TimeNs write_latency{200.0};
  EnergyPj write_energy_per_cell{50.0};

  [[nodiscard]] Status Validate() const {
    if (rows == 0 || width_bits == 0) {
      return InvalidArgument("rows and width_bits must be non-zero");
    }
    if (width_bits > 1024) {
      return InvalidArgument("width_bits above 1024 not modelled");
    }
    return Status::Ok();
  }
};

struct SearchResult {
  std::vector<std::size_t> matches;  // row indices, ascending
  CostReport cost;
};

class TcamArray {
 public:
  [[nodiscard]] static Expected<TcamArray> Create(const TcamParams& params);

  [[nodiscard]] std::size_t rows() const { return params_.rows; }
  [[nodiscard]] std::size_t width() const { return params_.width_bits; }

  // Store a ternary word in `row`. Word length must equal width.
  Status WriteRow(std::size_t row, std::span<const Ternary> word);
  // Convenience: store a binary key with a care-mask (1 = compare).
  Status WriteRowBits(std::size_t row, std::uint64_t key,
                      std::uint64_t care_mask);
  // Invalidate a row (it matches nothing).
  Status ClearRow(std::size_t row);

  // One-cycle parallel search: returns every valid row whose non-don't-care
  // cells equal the key bits.
  [[nodiscard]] SearchResult Search(std::span<const Ternary> key);
  [[nodiscard]] SearchResult SearchBits(std::uint64_t key);

  // Associative-processor write: one extra cycle writes `value` into field
  // [bit_offset, bit_offset+value_bits) of every row matched by the last
  // search mask — the parallel conditional update the AP papers build on.
  Status WriteToMatches(const SearchResult& matches, std::size_t bit_offset,
                        std::uint64_t value, int value_bits);

  [[nodiscard]] const CostReport& lifetime_cost() const { return cost_; }

 private:
  explicit TcamArray(const TcamParams& params);

  TcamParams params_;
  std::vector<Ternary> cells_;       // rows x width
  std::vector<std::uint8_t> valid_;  // per row
  CostReport cost_;
};

}  // namespace cim::logic
