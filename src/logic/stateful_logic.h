// Stateful in-memory logic engines (§III.A).
//
// The paper cites two primitive families upon which CIM logic cores build:
//   * Borghetti et al.: NOT + IMP (material implication) executed directly
//     in memristor state — ImplyEngine,
//   * MAGIC-style NOR as the universal primitive — MagicNorEngine.
// Both operate on a register file of single-bit memristor latches. Each
// primitive is one conditional-write cycle on the array; the engines count
// cycles and energy so synthesized circuits (logic/arith.h) can compare the
// families' cost, exactly the design-space the paper sketches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace cim::logic {

struct LogicParams {
  std::size_t register_count = 64;
  // One primitive = one program pulse on a memristor row.
  TimeNs cycle_latency{100.0};
  EnergyPj cycle_energy{50.0};

  [[nodiscard]] Status Validate() const {
    if (register_count == 0) return InvalidArgument("need >= 1 register");
    return Status::Ok();
  }
};

// Common state + accounting shared by both primitive families.
class LogicEngineBase {
 public:
  explicit LogicEngineBase(const LogicParams& params)
      : params_(params), bits_(params.register_count, false) {}

  [[nodiscard]] std::size_t register_count() const { return bits_.size(); }
  [[nodiscard]] const LogicParams& params() const { return params_; }

  [[nodiscard]] Expected<bool> ReadBit(std::size_t idx) const {
    if (idx >= bits_.size()) return OutOfRange("register index");
    return static_cast<bool>(bits_[idx]);
  }
  Status WriteBit(std::size_t idx, bool value) {
    if (idx >= bits_.size()) return OutOfRange("register index");
    bits_[idx] = value;
    Account();
    return Status::Ok();
  }

  [[nodiscard]] const CostReport& cost() const { return cost_; }
  void ResetCost() { cost_ = CostReport{}; }

 protected:
  void Account() {
    cost_.latency_ns += params_.cycle_latency.ns;
    cost_.energy_pj += params_.cycle_energy.pj;
    ++cost_.operations;
  }
  [[nodiscard]] bool bit(std::size_t idx) const { return bits_[idx]; }
  void set_bit(std::size_t idx, bool v) { bits_[idx] = v; }
  [[nodiscard]] bool InRange(std::size_t idx) const {
    return idx < bits_.size();
  }

 private:
  LogicParams params_;
  std::vector<std::uint8_t> bits_;
  CostReport cost_;
};

// Borghetti et al. material-implication engine. Primitives:
//   False(q):    q <- 0                  (RESET pulse)
//   Imply(p, q): q <- (NOT p) OR q       (conditional SET)
// NOT/NAND and all other gates derive from these two.
class ImplyEngine : public LogicEngineBase {
 public:
  using LogicEngineBase::LogicEngineBase;

  Status False(std::size_t q) {
    if (!InRange(q)) return OutOfRange("False register");
    set_bit(q, false);
    Account();
    return Status::Ok();
  }

  Status Imply(std::size_t p, std::size_t q) {
    if (!InRange(p) || !InRange(q)) return OutOfRange("Imply register");
    set_bit(q, !bit(p) || bit(q));
    Account();
    return Status::Ok();
  }

  // dst <- NOT src (2 cycles: False + Imply).
  Status Not(std::size_t src, std::size_t dst) {
    if (Status s = False(dst); !s.ok()) return s;
    return Imply(src, dst);
  }

  // dst <- NAND(a, b) (3 cycles): dst=0; dst<-a IMP dst (=!a);
  // dst<-b IMP dst (=!b OR !a).
  Status Nand(std::size_t a, std::size_t b, std::size_t dst) {
    if (Status s = False(dst); !s.ok()) return s;
    if (Status s = Imply(a, dst); !s.ok()) return s;
    return Imply(b, dst);
  }
};

// MAGIC-style NOR engine. Primitives:
//   Init(q):      q <- 1 (output latch pre-set)
//   Nor(a, b, q): q <- NOT(a OR b), requires q pre-set to 1
class MagicNorEngine : public LogicEngineBase {
 public:
  using LogicEngineBase::LogicEngineBase;

  Status Init(std::size_t q) {
    if (!InRange(q)) return OutOfRange("Init register");
    set_bit(q, true);
    Account();
    return Status::Ok();
  }

  Status Nor(std::size_t a, std::size_t b, std::size_t dst) {
    if (!InRange(a) || !InRange(b) || !InRange(dst)) {
      return OutOfRange("Nor register");
    }
    if (!bit(dst)) {
      return FailedPrecondition("MAGIC NOR output latch must be pre-set");
    }
    set_bit(dst, !(bit(a) || bit(b)));
    Account();
    return Status::Ok();
  }

  // dst <- NOT a (Init + Nor(a, a)).
  Status Not(std::size_t a, std::size_t dst) {
    if (Status s = Init(dst); !s.ok()) return s;
    return Nor(a, a, dst);
  }
};

// Chen et al.-style digital CIM macro exposing AND/OR/XOR directly between
// whole machine words stored in memory rows (also covers the Ambit-style
// bulk-bitwise DRAM operations the paper cites). One row-wide operation
// costs one cycle regardless of word width — the bulk parallelism is the
// point.
class BulkBitwiseEngine {
 public:
  struct Params {
    std::size_t rows = 64;
    std::size_t bits_per_row = 256;
    TimeNs row_op_latency{150.0};  // triple-row-activate class timing
    EnergyPj row_op_energy{300.0};

    [[nodiscard]] Status Validate() const {
      if (rows == 0 || bits_per_row == 0) {
        return InvalidArgument("rows and bits_per_row must be non-zero");
      }
      if (bits_per_row % 64 != 0) {
        return InvalidArgument("bits_per_row must be a multiple of 64");
      }
      return Status::Ok();
    }
  };

  [[nodiscard]] static Expected<BulkBitwiseEngine> Create(
      const Params& params);

  [[nodiscard]] std::size_t rows() const { return params_.rows; }
  [[nodiscard]] std::size_t words_per_row() const {
    return params_.bits_per_row / 64;
  }

  Status WriteRow(std::size_t row, std::span<const std::uint64_t> words);
  [[nodiscard]] Expected<std::vector<std::uint64_t>> ReadRow(
      std::size_t row) const;

  // dst <- a OP b, whole row at once, one cycle.
  Status And(std::size_t a, std::size_t b, std::size_t dst);
  Status Or(std::size_t a, std::size_t b, std::size_t dst);
  Status Xor(std::size_t a, std::size_t b, std::size_t dst);
  Status Not(std::size_t a, std::size_t dst);

  [[nodiscard]] const CostReport& cost() const { return cost_; }
  void ResetCost() { cost_ = CostReport{}; }

 private:
  explicit BulkBitwiseEngine(const Params& params);
  template <typename Fn>
  Status RowOp(std::size_t a, std::size_t b, std::size_t dst, Fn&& fn);

  Params params_;
  std::vector<std::uint64_t> storage_;  // rows * words_per_row
  CostReport cost_;
};

}  // namespace cim::logic
