// Behavioural memristor (ReRAM) device model.
//
// This is the substitution for the physical memristor arrays of the paper's
// Dot Product Engine (§VI): a multi-level conductance cell with
//   * bounded conductance range [g_off, g_on],
//   * discrete programmable levels (cell_bits),
//   * asymmetric write behaviour — SET (toward g_on) is faster than RESET
//     (toward g_off), and both are orders of magnitude slower than reads,
//     which is exactly the "asymmetric latency for writing memristors" the
//     paper calls out as the main scaling challenge,
//   * multiplicative (lognormal) read noise,
//   * conductance drift toward g_off over time (aging, §V.D),
//   * finite endurance after which the cell becomes stuck (fault model),
//   * per-operation energy accounting.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace cim::device {

enum class CellFault {
  kNone = 0,
  kStuckOff,  // stuck at g_off (open-circuit-like defect)
  kStuckOn,   // stuck at g_on (short-like defect)
};

struct MemristorParams {
  // Conductance range in siemens. TaOx-class defaults (ISAAC lineage).
  double g_on_siemens = 1.0 / 2e3;    // R_on = 2 kΩ
  double g_off_siemens = 1.0 / 2e6;   // R_off = 2 MΩ
  int cell_bits = 2;                  // 4 programmable levels

  // Timing. Reads are wordline pulses; writes are program-verify loops.
  TimeNs read_latency{10.0};
  TimeNs set_latency{100.0};     // toward higher conductance
  TimeNs reset_latency{1000.0};  // toward lower conductance (asymmetric)

  // Energy per operation.
  EnergyPj read_energy{0.5};
  EnergyPj write_energy{100.0};

  // Multiplicative read-noise sigma of ln(conductance).
  double read_noise_sigma = 0.02;

  // Write-verify tolerance as a fraction of one level step; the program
  // loop retries until within tolerance (bounded by max_write_iterations).
  double write_tolerance = 0.25;
  int max_write_iterations = 8;
  double write_noise_sigma = 0.1;  // per-pulse programming noise (of a step)

  // Endurance: expected number of write cycles before the cell degrades
  // into a stuck fault. 0 disables wear-out.
  std::uint64_t endurance_cycles = 100'000'000;

  // Drift: conductance decays toward g_off as g(t) = g0 * (t/t0)^-nu.
  double drift_nu = 0.005;
  TimeNs drift_t0{1000.0};

  [[nodiscard]] std::uint64_t levels() const {
    return std::uint64_t{1} << cell_bits;
  }
  // Conductance of a given level (linearly spaced between g_off and g_on).
  [[nodiscard]] double LevelConductance(std::uint64_t level) const;
  [[nodiscard]] Status Validate() const;
};

// Result of a program operation: how long it took, how much energy it used,
// and how many program-verify iterations ran.
struct ProgramResult {
  TimeNs latency;
  EnergyPj energy;
  int iterations = 0;
  bool verified = false;  // false when the loop exhausted its budget
};

struct ReadResult {
  double conductance_siemens = 0.0;
  TimeNs latency;
  EnergyPj energy;
};

// The cell is deliberately tiny (state only); the shared MemristorParams is
// passed into every operation rather than stored, so arrays of millions of
// cells stay compact and cells remain trivially relocatable with their
// owning array.
class MemristorCell {
 public:
  explicit MemristorCell(const MemristorParams& params)
      : conductance_(params.g_off_siemens) {}

  // Program the cell to `level` (0 .. levels-1) with a write-verify loop.
  // Programming a faulted cell reports success=false but still costs time
  // and energy (the controller cannot know until it verifies).
  ProgramResult Program(const MemristorParams& params, std::uint64_t level,
                        Rng& rng);

  // Read the instantaneous (noisy) conductance.
  ReadResult Read(const MemristorParams& params, Rng& rng) const;

  // Noise-free conductance — used by golden models and tests.
  [[nodiscard]] double true_conductance() const { return conductance_; }

  // Apply drift for `elapsed` of idle time.
  void Age(const MemristorParams& params, TimeNs elapsed);

  // Fault handling.
  [[nodiscard]] CellFault fault() const { return fault_; }
  void InjectFault(CellFault fault);
  [[nodiscard]] std::uint64_t write_cycles() const { return write_cycles_; }

 private:
  double conductance_;
  CellFault fault_ = CellFault::kNone;
  std::uint64_t write_cycles_ = 0;
};

}  // namespace cim::device
