// Read-noise sampling strategy and its equivalence contract.
//
// The crossbar kernels multiply every sensed conductance by a lognormal
// read-noise factor. How those factors are *sampled* is a kernel-policy
// decision with a correctness contract attached:
//
//   KernelPolicy::kReference    per-cell AoS kernel; scalar libm sampling.
//                               The golden model — defines the stream.
//   KernelPolicy::kFastBitExact SoA two-pass kernel; scalar libm sampling
//                               in the reference draw order. Contract:
//                               bit-identical outputs to kReference.
//   KernelPolicy::kFastNoise    SoA kernel; factors served from a
//                               precomputed noise tile — an exact
//                               LogNormal(0, sigma) quantile lattice,
//                               shuffled once with counter-based hashes —
//                               at a fresh random rotation per row draw.
//                               Contract: *statistical* equivalence — the
//                               factors follow the same LogNormal(0,
//                               sigma) distribution (KS + moment gate) and
//                               end-to-end NN accuracy is at parity, but
//                               individual draws differ from the
//                               reference stream.
//
// NoiseModel owns both halves: FillFactors() is the sampler the fast
// kernels call, and CheckEquivalence() is the gate the differential suite
// and the bench use to enforce the kFastNoise contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace cim::device {

enum class KernelPolicy : std::uint8_t {
  kReference = 0,
  kFastBitExact,
  kFastNoise,
};

[[nodiscard]] std::string KernelPolicyName(KernelPolicy policy);

class NoiseModel {
 public:
  // One tile entry per quantile of the contract distribution; 2^16 entries
  // (512 KiB) keeps the lattice's own KS distance (~1/2^17) four orders of
  // magnitude under the gate threshold while the tile stays L2-resident.
  static constexpr std::size_t kTileSize = std::size_t{1} << 16;

  NoiseModel() = default;
  NoiseModel(double sigma, KernelPolicy policy)
      : sigma_(sigma), policy_(policy) {
    if (policy_ == KernelPolicy::kFastNoise && enabled()) BuildTile();
  }

  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] KernelPolicy policy() const { return policy_; }
  [[nodiscard]] bool enabled() const { return sigma_ > 0.0; }
  // True when the sampler reproduces the reference RNG stream draw for
  // draw (the bit-identity contract); false when the contract is
  // distributional only.
  [[nodiscard]] bool bit_exact() const {
    return policy_ != KernelPolicy::kFastNoise;
  }

  // Fill out[0..n) with multiplicative read-noise factors.
  //
  //   kReference / kFastBitExact: consumes exactly n LogNormal draws from
  //     `rng`, in order — bit-identical to the reference kernel's stream.
  //   kFastNoise: consumes exactly ONE u64 from `rng` (the tile rotation)
  //     and copies n consecutive entries of the precomputed noise tile,
  //     wrapping around — per-factor cost is an L2 load, not libm.
  //
  // Callers pass one call per active row; the serial draw keeps successive
  // rows (and successive cycles) on decorrelated tile windows.
  void FillFactors(Rng& rng, double* out, std::size_t n) const;

  // ---- The statistical-equivalence contract -------------------------------

  struct EquivalenceReport {
    std::size_t samples = 0;
    double ks_statistic = 0.0;   // sup-norm vs the LogNormal(0, sigma) CDF
    double ks_threshold = 0.0;   // c(alpha=0.01)/sqrt(n), c = 1.628
    double mean_log = 0.0;       // mean of ln(factor); contract: 0
    double mean_log_bound = 0.0; // z=3.29 (two-sided 0.1%) * sigma/sqrt(n)
    double var_log = 0.0;        // variance of ln(factor); contract: sigma^2
    double var_log_bound = 0.0;  // z * sigma^2 * sqrt(2/(n-1))
    bool ks_pass = false;
    bool moments_pass = false;
    [[nodiscard]] bool pass() const { return ks_pass && moments_pass; }
  };

  // Gate `factors` against this model's contract distribution
  // LogNormal(0, sigma): one-sample KS test plus first/second moment tests
  // on ln(factor). Used by the differential suite and bench_mvm_kernel.
  [[nodiscard]] EquivalenceReport CheckEquivalence(
      const std::vector<double>& factors) const;

  // CDF of LogNormal(mu, sigma) at x (0 for x <= 0). Exposed for the
  // test-side KS helpers.
  [[nodiscard]] static double LogNormalCdf(double x, double mu, double sigma);

 private:
  // Fills tile_ with exp(sigma * Phi^-1((i + 0.5) / kTileSize)) — the exact
  // midpoint-quantile lattice of LogNormal(0, sigma) — then Fisher-Yates
  // shuffles it with counter-based hashes so any contiguous window is a
  // simple random sample of the lattice.
  void BuildTile();

  double sigma_ = 0.0;
  KernelPolicy policy_ = KernelPolicy::kFastBitExact;
  std::vector<double> tile_;
};

namespace detail {
// Branch-free polynomial exp: Cody-Waite range reduction to
// [-ln2/2, ln2/2], degree-7 Taylor, exponent reassembly via bit twiddling.
// Relative error < 6e-9 over |x| <= 16; input is clamped to that domain
// (the sampler only ever needs |x| <= sigma * 9).
[[nodiscard]] double FastExp(double x);

// Acklam's rational approximation of the inverse standard-normal CDF,
// u in (0, 1); relative error ~1.15e-9. The central region
// |u - 0.5| <= 0.47575 (~95% of draws) is branchless polynomial work; the
// tails fall back to a sqrt(-2 log u) form. This is the quantile function
// the noise tile is built from.
[[nodiscard]] double InverseNormalCdf(double u);

// The counter-based uniform underlying the tile shuffle: splitmix64
// finalizer of (stream, index) mapped into (0, 1). Exposed so tests can
// pin the stream.
[[nodiscard]] double CounterUniform(std::uint64_t stream, std::uint64_t index);
}  // namespace detail

}  // namespace cim::device
