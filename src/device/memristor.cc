#include "device/memristor.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace cim::device {

double MemristorParams::LevelConductance(std::uint64_t level) const {
  // Out-of-range levels are a caller bug: the silent std::min clamp here
  // used to masquerade as a legitimate g_on programming target.
  CIM_DCHECK(level < levels());
  const auto top = static_cast<double>(levels() - 1);
  const double frac =
      top > 0.0 ? static_cast<double>(std::min(level, levels() - 1)) / top
                : 0.0;
  return g_off_siemens + frac * (g_on_siemens - g_off_siemens);
}

Status MemristorParams::Validate() const {
  if (g_on_siemens <= g_off_siemens) {
    return InvalidArgument("g_on must exceed g_off");
  }
  if (g_off_siemens <= 0.0) return InvalidArgument("g_off must be positive");
  if (cell_bits < 1 || cell_bits > 8) {
    return InvalidArgument("cell_bits must be in [1, 8]");
  }
  if (read_noise_sigma < 0.0 || write_noise_sigma < 0.0) {
    return InvalidArgument("noise sigmas must be non-negative");
  }
  if (max_write_iterations < 1) {
    return InvalidArgument("max_write_iterations must be >= 1");
  }
  return Status::Ok();
}

ProgramResult MemristorCell::Program(const MemristorParams& p,
                                     std::uint64_t level, Rng& rng) {
  CIM_DCHECK(level < p.levels());
  const double target = p.LevelConductance(level);
  const double step =
      (p.g_on_siemens - p.g_off_siemens) / static_cast<double>(p.levels() - 1);
  const double tolerance = p.write_tolerance * step;

  ProgramResult result;
  ++write_cycles_;

  // Wear-out: past the endurance budget the cell collapses into a stuck
  // fault with probability growing per extra cycle.
  if (p.endurance_cycles > 0 && write_cycles_ > p.endurance_cycles &&
      fault_ == CellFault::kNone) {
    const double excess = static_cast<double>(write_cycles_ -
                                              p.endurance_cycles) /
                          static_cast<double>(p.endurance_cycles);
    if (rng.Bernoulli(std::min(1.0, excess))) {
      fault_ = rng.Bernoulli(0.5) ? CellFault::kStuckOn : CellFault::kStuckOff;
    }
  }

  for (int iter = 0; iter < p.max_write_iterations; ++iter) {
    // Each iteration is one program pulse plus one verify read.
    const bool increasing = target > conductance_;
    result.latency += increasing ? p.set_latency : p.reset_latency;
    result.latency += p.read_latency;
    result.energy += p.write_energy + p.read_energy;
    ++result.iterations;

    if (fault_ != CellFault::kNone) {
      conductance_ = fault_ == CellFault::kStuckOn ? p.g_on_siemens
                                                   : p.g_off_siemens;
      continue;  // pulses do nothing; verify keeps failing
    }

    // Pulse moves conductance toward the target with programming noise.
    const double noise = rng.Gaussian(0.0, p.write_noise_sigma * step);
    conductance_ = std::clamp(target + noise, p.g_off_siemens, p.g_on_siemens);

    if (std::fabs(conductance_ - target) <= tolerance) {
      result.verified = true;
      break;
    }
  }
  return result;
}

ReadResult MemristorCell::Read(const MemristorParams& p,
                               Rng& rng) const {
  ReadResult result;
  result.latency = p.read_latency;
  // Read energy is ohmic (V^2 * G * t): proportional to the cell's
  // conductance, with read_energy specifying the cost at g_on. Cells at
  // g_off cost ~1000x less — unused array regions are nearly free.
  result.energy = p.read_energy * (conductance_ / p.g_on_siemens);
  double g = conductance_;
  if (fault_ == CellFault::kStuckOn) g = p.g_on_siemens;
  if (fault_ == CellFault::kStuckOff) g = p.g_off_siemens;
  if (p.read_noise_sigma > 0.0) {
    // The golden per-cell reference draw: this call DEFINES the noise
    // stream the bit-exact kernels must reproduce, so it stays a direct
    // draw rather than routing through NoiseModel::FillFactors.
    g *= rng.LogNormal(0.0, p.read_noise_sigma);  // cimlint: allow-lognormal
  }
  result.conductance_siemens =
      std::clamp(g, 0.0, p.g_on_siemens * 1.5);  // soft physical ceiling
  return result;
}

void MemristorCell::Age(const MemristorParams& p, TimeNs elapsed) {
  if (elapsed.ns <= 0.0 || p.drift_nu <= 0.0) return;
  // Power-law decay toward g_off: g -> g_off + (g - g_off) * (1+t/t0)^-nu.
  const double factor =
      std::pow(1.0 + elapsed.ns / p.drift_t0.ns, -p.drift_nu);
  conductance_ = p.g_off_siemens + (conductance_ - p.g_off_siemens) * factor;
}

void MemristorCell::InjectFault(CellFault fault) { fault_ = fault; }

}  // namespace cim::device
