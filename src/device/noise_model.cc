#include "device/noise_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>

#include "common/contracts.h"

namespace cim::device {
namespace {

// Acklam's inverse-normal-CDF rational approximations (central region and
// tails), relative error ~1.15e-9 — far below the resolution of any
// distributional gate this sampler feeds.
constexpr double kA0 = -3.969683028665376e+01;
constexpr double kA1 = 2.209460984245205e+02;
constexpr double kA2 = -2.759285104469687e+02;
constexpr double kA3 = 1.383577518672690e+02;
constexpr double kA4 = -3.066479806614716e+01;
constexpr double kA5 = 2.506628277459239e+00;

constexpr double kB0 = -5.447609879822406e+01;
constexpr double kB1 = 1.615858368580409e+02;
constexpr double kB2 = -1.556989798598866e+02;
constexpr double kB3 = 6.680131188771972e+01;
constexpr double kB4 = -1.328068155288572e+01;

constexpr double kC0 = -7.784894002430293e-03;
constexpr double kC1 = -3.223964580411365e-01;
constexpr double kC2 = -2.400758277161838e+00;
constexpr double kC3 = -2.549732539343734e+00;
constexpr double kC4 = 4.374664141464968e+00;
constexpr double kC5 = 2.938163982698783e+00;

constexpr double kD0 = 7.784695709041462e-03;
constexpr double kD1 = 3.224671290700398e-01;
constexpr double kD2 = 2.445134137142996e+00;
constexpr double kD3 = 3.754408661907416e+00;

// The central rational approximation is accurate for p in [kPLow, kPHigh]
// — |u - 0.5| <= 0.47575, ~95.15% of uniform draws; outside it the tail
// form takes over.
constexpr double kPLow = 0.02425;
constexpr double kPHigh = 1.0 - kPLow;

// Cody-Waite split of ln 2 so the range reduction stays accurate for the
// small multiples of ln 2 the sampler produces.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kLog2E = 1.44269504088896338700e+00;

// The helpers below build the noise tile (one pass per NoiseModel) and back
// the detail:: test hooks; they are not on the per-cell serving path, which
// is a plain tile copy.

// Central-region rational polynomial; accurate for |q| <= 0.5 - kPLow
// (the region InverseNormalCdfImpl routes here).
[[gnu::always_inline]] inline double CentralInverseCdf(double q) {
  const double r = q * q;
  const double num =
      (((((kA0 * r + kA1) * r + kA2) * r + kA3) * r + kA4) * r + kA5) * q;
  const double den =
      ((((kB0 * r + kB1) * r + kB2) * r + kB3) * r + kB4) * r + 1.0;
  return num / den;
}

inline double TailInverseCdf(double u) {
  // Lower tail; the upper tail is the mirror image.
  const bool upper = u > 0.5;
  const double p = upper ? 1.0 - u : u;
  const double q = std::sqrt(-2.0 * std::log(p));
  const double x =
      (((((kC0 * q + kC1) * q + kC2) * q + kC3) * q + kC4) * q + kC5) /
      ((((kD0 * q + kD1) * q + kD2) * q + kD3) * q + 1.0);
  return upper ? -x : x;
}

// exp(x) for |x| <= 0.3466 (= ln2/2) without range reduction: degree-7
// Taylor, relative error < 5e-9; FastExpImpl's range reduction feeds it.
[[gnu::always_inline]] inline double ExpPoly(double r) {
  double p = 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  return p;
}

[[gnu::always_inline]] inline double FastExpImpl(double x) {
  // General-range exp: Cody-Waite reduction to |r| <= ln2/2, ExpPoly, then
  // multiply by 2^k by adding k to the exponent field — p is in
  // [exp(-ln2/2), exp(ln2/2)] ~ [0.707, 1.415] and the clamp bounds |k| by
  // 24, so the result exponent stays far from overflow and subnormals.
  x = std::clamp(x, -16.0, 16.0);
  const double kd = std::floor(x * kLog2E + 0.5);
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  const double p = ExpPoly(r);
  const auto k = static_cast<std::int64_t>(kd);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(p) +
                             (static_cast<std::uint64_t>(k) << 52);
  return std::bit_cast<double>(bits);
}

[[gnu::always_inline]] inline double CounterUniformImpl(std::uint64_t stream,
                                                        std::uint64_t index) {
  // Splitmix64 finalizer over (stream, index): no serial dependency
  // between cells. The +0.5 centers the 53-bit lattice inside (0, 1) —
  // never exactly 0 or 1.
  const std::uint64_t z = DeriveSeed(stream, index);
  return (static_cast<double>(z >> 11) + 0.5) * 0x1.0p-53;
}

[[gnu::always_inline]] inline double InverseNormalCdfImpl(double u) {
  if (u < kPLow || u > kPHigh) [[unlikely]] {
    return TailInverseCdf(u);
  }
  return CentralInverseCdf(u - 0.5);
}

}  // namespace

namespace detail {

// Out-of-line wrappers so tests can pin the building blocks; the sampling
// loop uses the always-inline implementations above.

double FastExp(double x) { return FastExpImpl(x); }

double InverseNormalCdf(double u) {
  CIM_DCHECK(u > 0.0 && u < 1.0);
  return InverseNormalCdfImpl(u);
}

double CounterUniform(std::uint64_t stream, std::uint64_t index) {
  return CounterUniformImpl(stream, index);
}

}  // namespace detail

std::string KernelPolicyName(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kReference:
      return "reference";
    case KernelPolicy::kFastBitExact:
      return "fast-bit-exact";
    case KernelPolicy::kFastNoise:
      return "fast-noise";
  }
  return "unknown";
}

void NoiseModel::FillFactors(Rng& rng, double* out, std::size_t n) const {
  if (policy_ == KernelPolicy::kFastNoise) {
    CIM_DCHECK(!tile_.empty());
    // One serial draw per call rotates the tile to a fresh window, so
    // successive rows and cycles see decorrelated factor sequences; the
    // per-factor cost is an L2-resident copy instead of a libm pipeline.
    static_assert((kTileSize & (kTileSize - 1)) == 0,
                  "tile rotation uses a power-of-two mask");
    std::size_t offset =
        static_cast<std::size_t>(rng.NextU64()) & (kTileSize - 1);
    std::size_t written = 0;
    while (written < n) {
      const std::size_t take = std::min(n - written, kTileSize - offset);
      std::memcpy(out + written, tile_.data() + offset,
                  take * sizeof(double));
      written += take;
      offset = 0;
    }
    return;
  }
  // Bit-exact contract: reproduce the reference kernel's LogNormal stream
  // draw for draw.
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.LogNormal(0.0, sigma_);
}

void NoiseModel::BuildTile() {
  tile_.resize(kTileSize);
  // Midpoint-quantile lattice: tile_[i] = exp(sigma * Phi^-1((i+0.5)/N)).
  // Its empirical CDF tracks the contract distribution within 1/(2N) —
  // orders of magnitude below the KS gate — and unlike an iid-sampled pool
  // it carries no sampling error of its own. Built once per model with
  // full-accuracy libm exp; serving never touches libm again.
  for (std::size_t i = 0; i < kTileSize; ++i) {
    const double u = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(kTileSize);
    tile_[i] = std::exp(sigma_ * InverseNormalCdfImpl(u));
  }
  // Fisher-Yates with counter-based hashes (fixed seed: the tile is a
  // deterministic function of sigma alone; all run-to-run variation comes
  // from the per-call rotation draw). After the shuffle any contiguous
  // window is a simple random sample of the lattice, so a row's factors
  // are exchangeable draws from the contract distribution.
  constexpr std::uint64_t kShuffleSeed = 0x9D5C0F2B43E18A67ULL;
  for (std::size_t i = kTileSize - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(
        DeriveSeed(kShuffleSeed, static_cast<std::uint64_t>(i)) % (i + 1));
    std::swap(tile_[i], tile_[j]);
  }
}

double NoiseModel::LogNormalCdf(double x, double mu, double sigma) {
  if (x <= 0.0) return 0.0;
  CIM_DCHECK(sigma > 0.0);
  return 0.5 * std::erfc(-(std::log(x) - mu) /
                         (sigma * std::numbers::sqrt2));
}

NoiseModel::EquivalenceReport NoiseModel::CheckEquivalence(
    const std::vector<double>& factors) const {
  EquivalenceReport report;
  report.samples = factors.size();
  if (factors.empty() || sigma_ <= 0.0) return report;
  const auto n = static_cast<double>(factors.size());

  // One-sample Kolmogorov-Smirnov against the contract distribution
  // LogNormal(0, sigma), alpha = 0.01 (c = 1.628).
  std::vector<double> sorted = factors;
  std::sort(sorted.begin(), sorted.end());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = LogNormalCdf(sorted[i], 0.0, sigma_);
    const double lo = cdf - static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n - cdf;
    d = std::max({d, lo, hi});
  }
  report.ks_statistic = d;
  report.ks_threshold = 1.628 / std::sqrt(n);
  report.ks_pass = d <= report.ks_threshold;

  // Moment tests on ln(factor) ~ Normal(0, sigma^2): the sample mean is
  // Normal(0, sigma^2/n) and the sample variance has standard error
  // ~ sigma^2 * sqrt(2/(n-1)); both bounds use z = 3.29 (two-sided 0.1%).
  constexpr double kZ = 3.29;
  double sum = 0.0;
  for (const double f : factors) sum += std::log(f);
  const double mean = sum / n;
  double ss = 0.0;
  for (const double f : factors) {
    const double dev = std::log(f) - mean;
    ss += dev * dev;
  }
  const double var = ss / (n - 1.0);
  report.mean_log = mean;
  report.mean_log_bound = kZ * sigma_ / std::sqrt(n);
  report.var_log = var;
  report.var_log_bound = kZ * sigma_ * sigma_ * std::sqrt(2.0 / (n - 1.0));
  report.moments_pass =
      std::abs(mean) <= report.mean_log_bound &&
      std::abs(var - sigma_ * sigma_) <= report.var_log_bound;
  return report;
}

}  // namespace cim::device
