#include "dpe/scaling.h"

#include <algorithm>
#include <cmath>

namespace cim::dpe {

Expected<ScalingReport> MultiBoardModel::Evaluate(
    const nn::Network& net, std::size_t boards,
    double weight_updates_per_sec, bool hide_writes) const {
  if (boards == 0) return InvalidArgument("need >= 1 board");
  auto estimate = model_.EstimateInference(net);
  if (!estimate.ok()) return estimate.status();
  auto mappings = model_.MapNetwork(net);
  if (!mappings.ok()) return mappings.status();

  const DpeParams& p = model_.params();
  ScalingReport report;

  // Array demand per replica (doubled when write hiding shadows every
  // array).
  const std::size_t arrays_per_replica =
      estimate->arrays_used * (hide_writes ? 2 : 1);
  report.boards_needed =
      std::max<std::size_t>(1, (arrays_per_replica + p.arrays_per_board - 1) /
                                   p.arrays_per_board);
  if (boards < report.boards_needed) {
    return CapacityExceeded("network does not fit on the given boards");
  }
  report.replicas = std::max<std::size_t>(1, boards / report.boards_needed);
  report.arrays_total = arrays_per_replica * report.replicas;

  // Sequentially pack layers onto the boards of one replica; each layer
  // boundary that crosses a board pays a link transfer of its activation
  // vector (8-bit activations).
  double interboard_bytes = 0.0;
  double crossing_latency = 0.0;
  if (report.boards_needed > 1) {
    const double capacity = static_cast<double>(p.arrays_per_board) *
                            (hide_writes ? 0.5 : 1.0);
    double used = 0.0;
    for (const LayerMapping& m : *mappings) {
      if (m.arrays == 0) continue;
      if (used + static_cast<double>(m.arrays) > capacity && used > 0.0) {
        // This layer starts on the next board: its whole input activation
        // stream crosses the link.
        const double bytes =
            static_cast<double>(m.in_dim) *
            static_cast<double>(std::max<std::uint64_t>(m.mvm_invocations, 1));
        interboard_bytes += bytes;
        crossing_latency +=
            p.board_link_latency_ns +
            bytes / p.board_link_bandwidth_gbps;  // GB/s == bytes/ns
        used = 0.0;
      }
      used += static_cast<double>(m.arrays);
      while (used > capacity) used -= capacity;
    }
  }
  report.interboard_bytes = interboard_bytes;
  report.single_latency_ns = estimate->latency_ns + crossing_latency;

  // Throughput: each replica pipelines inferences at the bottleneck stage;
  // conservatively use the full single-inference latency as the initiation
  // interval (no intra-replica overlap), letting replicas scale linearly.
  const double base_throughput =
      static_cast<double>(report.replicas) * 1e9 / report.single_latency_ns;
  report.throughput_per_sec = base_throughput;
  report.scaling_efficiency =
      base_throughput /
      (static_cast<double>(boards) /
       static_cast<double>(report.boards_needed) * 1e9 /
       estimate->latency_ns);

  // Weight updates: a full reprogram takes program_latency (rows written
  // serially, arrays in parallel). Without hiding, inference stalls for the
  // duration; with hiding, shadow arrays absorb it.
  const double update_seconds_per_update =
      estimate->program_latency_ns * 1e-9;
  const double stall =
      hide_writes ? 0.0
                  : std::min(1.0, weight_updates_per_sec *
                                      update_seconds_per_update);
  report.update_stall_fraction = stall;
  report.effective_throughput_per_sec = base_throughput * (1.0 - stall);
  return report;
}

}  // namespace cim::dpe
