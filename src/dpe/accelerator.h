// Behavioural DPE accelerator: actually executes a network on simulated
// analog crossbars (tiled MvmEngines per layer, digital bias/activation,
// im2col convolution). Slow but faithful — used for small networks, for
// accuracy experiments (quantization + analog error vs the float golden
// model), and to validate the analytical model's cost accounting.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "crossbar/mvm_engine.h"
#include "dpe/params.h"
#include "nn/network.h"

namespace cim::dpe {

class DpeAccelerator {
 public:
  // Programs all layer weights onto crossbars (the slow write path).
  [[nodiscard]] static Expected<std::unique_ptr<DpeAccelerator>> Create(
      const DpeParams& params, const nn::Network& net, Rng rng);

  // Batch-1 inference. Cost of this inference is added to *cost if given.
  [[nodiscard]] Expected<nn::Tensor> Infer(const nn::Tensor& input,
                                           CostReport* cost = nullptr);

  [[nodiscard]] const CostReport& program_cost() const {
    return program_cost_;
  }
  [[nodiscard]] std::size_t arrays_used() const { return arrays_used_; }

  // Fault-injection hook: flip one cell in the first engine of layer
  // `layer_index` (reliability experiments).
  Status InjectFault(std::size_t layer_index, std::size_t row,
                     std::size_t col, device::CellFault fault);

 private:
  struct EngineTile {
    crossbar::MvmEngine engine;
    std::size_t row_offset;  // input slice start
    std::size_t col_offset;  // output slice start
    std::size_t in;
    std::size_t out;
  };
  struct MappedMvmLayer {
    std::vector<EngineTile> tiles;
    std::size_t in_dim;
    std::size_t out_dim;
  };

  DpeAccelerator(const DpeParams& params, const nn::Network& net);

  // Split an (in_dim x out_dim) matrix over crossbar-sized engine tiles.
  Status MapMatrix(std::span<const double> matrix, std::size_t in_dim,
                   std::size_t out_dim, Rng& rng, MappedMvmLayer* mapped);

  // Run one tiled MVM; returns out_dim partial sums (bias not applied).
  Expected<std::vector<double>> RunMvm(MappedMvmLayer& mapped,
                                       std::span<const double> x,
                                       CostReport* cost);

  DpeParams params_;
  nn::Network net_;
  std::vector<MappedMvmLayer> mvm_layers_;  // one per dense/conv layer
  CostReport program_cost_;
  std::size_t arrays_used_ = 0;
};

}  // namespace cim::dpe
