// Behavioural DPE accelerator: actually executes a network on simulated
// analog crossbars (tiled MvmEngines per layer, digital bias/activation,
// im2col convolution). Slow but faithful — used for small networks, for
// accuracy experiments (quantization + analog error vs the float golden
// model), and to validate the analytical model's cost accounting.
//
// The inference runtime is batched and multi-threaded: independent engine
// tiles (and independent batch elements in InferBatch) execute concurrently
// on a host thread pool, mirroring how the modeled hardware fires all
// crossbars at once. Every MVM invocation draws its read noise from a
// stream derived from (root seed, tile index, call index), and partial
// sums / cost reports are merged in fixed tile order after each parallel
// region — so outputs and costs are bit-identical at any thread count, and
// InferBatch(N inputs) is bit-identical to N sequential Infer calls.
//
// Fault tolerance (§V.A, params.fault_tolerance): each tile MVM is checked
// at the tile boundary — an ABFT guard column inside the engine plus a
// checksum over the partial-sum transfer. A detected-bad tile is retried
// (fresh noise stream; transients do not recur), and a persistently bad or
// dead tile degrades the element gracefully: its partial contribution is
// flagged in InferResult::fault_report instead of poisoning the batch. At
// wave boundaries — the single-threaded gaps between parallel regions —
// flagged tiles are reprogrammed onto pre-provisioned spares and the aging
// monitor retires worn tiles proactively. Structural fault injection
// (AttachFaultInjector) fires at the same boundaries, so recovery decisions
// stay a pure function of (seed, scenario, batch shape): unaffected
// elements remain bit-identical to a fault-free run at every thread count.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "crossbar/mvm_engine.h"
#include "dpe/params.h"
#include "nn/network.h"
#include "reliability/aging_monitor.h"
#include "reliability/fault_injector.h"

namespace cim::dpe {

// Per-element recovery outcome (§V.A): how many tile MVMs were flagged at a
// boundary, how many re-executions ran, how many of the element's flagged
// tiles were subsequently remapped onto spares, and how many tile results
// were accepted degraded (retries exhausted, or a dead tile contributing
// zeros). clean() elements are bit-identical to a fault-free run.
struct FaultReport {
  std::uint64_t detected = 0;
  std::uint64_t retried = 0;
  std::uint64_t remapped = 0;
  std::uint64_t degraded = 0;

  [[nodiscard]] bool clean() const { return detected == 0 && degraded == 0; }
};

// One inference's output together with its fully accounted cost — the same
// pairing crossbar::MvmResult uses one layer down.
struct InferResult {
  nn::Tensor output;
  CostReport cost;
  FaultReport fault_report;
  // The share of `cost` attributable to interconnect traffic. Zero for a
  // lone accelerator; fabric::FabricCoSim fills it in (and folds it into
  // `cost`) when inter-tile activations ride the mesh NoC.
  CostReport noc_cost;
};

class DpeAccelerator {
 public:
  // Programs all layer weights onto crossbars (the slow write path).
  [[nodiscard]] static Expected<std::unique_ptr<DpeAccelerator>> Create(
      const DpeParams& params, const nn::Network& net, Rng rng);

  // Batch-1 inference. Engine tiles within each layer run in parallel on
  // the pool (params.worker_threads).
  [[nodiscard]] Expected<InferResult> Infer(const nn::Tensor& input);

  // Batched inference: batch elements run in parallel across the pool.
  // Outputs and per-element costs are bit-identical to calling Infer once
  // per input in order, at any thread count. With an armed fault injector
  // the batch is split into waves at structural fault steps; elements
  // before the first fired fault stay bit-identical to a fault-free run.
  [[nodiscard]] Expected<std::vector<InferResult>> InferBatch(
      std::span<const nn::Tensor> inputs);

  [[nodiscard]] const CostReport& program_cost() const {
    return program_cost_;
  }
  [[nodiscard]] std::size_t arrays_used() const { return arrays_used_; }
  // The pool executing tile/batch work; null when worker_threads == 1.
  [[nodiscard]] const ThreadPool* thread_pool() const { return pool_.get(); }

  // Register this accelerator's layers as injection targets named
  // "dpe.layer<k>" (k = mvm-layer index). The injector must outlive the
  // accelerator. Call injector->Arm() afterwards; structural specs then
  // fire at wave boundaries keyed on the global element step.
  Status AttachFaultInjector(reliability::FaultInjector* injector);

  // Fault-injection hook: flip the logical cell (row, col) — coordinates
  // global to the layer's weight matrix — in the owning engine tile.
  // `plane` selects the differential plane; `slice` a single bit-slice
  // array, or kAllSlices for every slice of the logical cell (a physical
  // crosspoint defect).
  static constexpr int kAllSlices = -1;
  Status InjectFault(std::size_t layer_index, std::size_t row,
                     std::size_t col, device::CellFault fault, int plane = 0,
                     int slice = kAllSlices);

  // Aggregate recovery activity since Create (all elements, all batches).
  [[nodiscard]] const FaultReport& recovery_stats() const {
    return recovery_stats_;
  }
  // Reprogramming cost of every tile->spare remap so far; the §VI write
  // asymmetry is what makes remap expensive and retry worth attempting.
  [[nodiscard]] const CostReport& recovery_cost() const {
    return recovery_cost_;
  }
  [[nodiscard]] std::size_t spares_available() const;
  // Aging-monitor view (null when fault tolerance is disabled).
  [[nodiscard]] const reliability::AgingMonitor* aging_monitor() const {
    return monitor_ ? &*monitor_ : nullptr;
  }

 private:
  // Mutable per-tile recovery state, shared across worker threads; heap-
  // allocated so EngineTile stays movable. Allocated only when fault
  // tolerance is enabled.
  struct TileFtState {
    std::atomic<bool> dead{false};
    std::atomic<bool> needs_remap{false};
    std::atomic<std::uint64_t> guard_checks{0};
    std::atomic<std::uint64_t> guard_failures{0};
    // Telemetry high-water marks from the last boundary drain.
    std::uint64_t drained_write_attempts = 0;
    std::uint64_t drained_verify_failures = 0;
    std::uint64_t drained_guard_checks = 0;
    std::uint64_t drained_guard_failures = 0;
  };
  struct EngineTile {
    crossbar::MvmEngine engine;
    std::size_t row_offset;  // input slice start
    std::size_t col_offset;  // output slice start
    std::size_t in;
    std::size_t out;
    // Root of this tile's noise-stream family: DeriveSeed(root_seed, tile
    // index). Each MVM invocation k on this tile draws from
    // Rng(DeriveSeed(noise_seed, k)).
    std::uint64_t noise_seed = 0;
    // Fault-tolerance state (engaged only when fault_tolerance.enabled).
    // base_seed is the stable family root; after a remap the replacement
    // engine reseeds from (base_seed, generation), never from spare claim
    // order, so recovery stays deterministic.
    std::uint64_t base_seed = 0;
    std::uint32_t generation = 0;
    std::uint32_t unit_id = 0;  // aging-monitor unit
    std::vector<double> submatrix;  // retained for remap reprogramming
    std::unique_ptr<TileFtState> ft;
  };
  struct MappedMvmLayer {
    std::vector<EngineTile> tiles;
    std::size_t in_dim;
    std::size_t out_dim;
    // Injection-target name ("dpe.layer<k>") and index, precomputed so the
    // hot path never formats strings.
    std::string target;
    std::size_t layer_index = 0;
    // MVM invocations one inference makes on this layer (1 for dense,
    // oh*ow pixels for conv) — the stride between batch elements in the
    // per-tile call numbering.
    std::uint64_t calls_per_inference = 1;
    // Calls already consumed by completed Infer/InferBatch requests.
    std::uint64_t committed_calls = 0;
  };
  // Per-element recovery trace: the report plus which (layer, tile) pairs
  // this element flagged for remap — used to attribute boundary remaps
  // back to the elements whose detections triggered them.
  struct ElementTrace {
    FaultReport report;
    std::vector<std::pair<std::size_t, std::size_t>> flagged;
  };

  DpeAccelerator(const DpeParams& params, const nn::Network& net);

  // Split an (in_dim x out_dim) matrix over crossbar-sized engine tiles.
  Status MapMatrix(std::span<const double> matrix, std::size_t in_dim,
                   std::size_t out_dim, Rng& rng, MappedMvmLayer* mapped);

  // Run one tiled MVM for call number `stream_offset` (relative to the
  // layer's committed_calls); returns out_dim partial sums (bias not
  // applied) plus the MVM's cost (latency = slowest tile, the tiles fire
  // concurrently in hardware). Tiles execute in parallel on the pool when
  // called outside an enclosing parallel region; the merge is serial in
  // tile order either way — which is also where tile-boundary detection
  // and retry run — so results never depend on scheduling. `element_step`
  // is the global batch-element index (transient-fault keying); `trace`
  // collects recovery counts (may be null iff fault tolerance is off).
  Expected<crossbar::MvmResult> RunMvm(const MappedMvmLayer& mapped,
                                       std::span<const double> x,
                                       std::uint64_t stream_offset,
                                       std::uint64_t element_step,
                                       ElementTrace* trace);

  // Whole-network forward pass for one batch element. `element_index`
  // offsets every layer's noise-stream numbering by
  // element_index * calls_per_inference; callers commit the consumed calls
  // afterwards via CommitCalls.
  Expected<InferResult> RunElement(const nn::Tensor& input,
                                   std::uint64_t element_index,
                                   ElementTrace* trace);

  void CommitCalls(std::uint64_t elements);

  // Single-threaded wave-boundary recovery: drain write/guard telemetry
  // into the aging monitor, evaluate proactive retirement, and reprogram
  // flagged tiles onto spares. Returns the (layer, tile) pairs remapped.
  std::vector<std::pair<std::size_t, std::size_t>> RecoverAtBoundary();

  // Reprogram one tile onto a fresh engine (spare claim already done).
  Status RemapTile(EngineTile& tile, std::uint32_t spare_unit);

  [[nodiscard]] bool ft_enabled() const {
    return params_.fault_tolerance.enabled;
  }

  DpeParams params_;
  nn::Network net_;
  std::vector<MappedMvmLayer> mvm_layers_;  // one per dense/conv layer
  CostReport program_cost_;
  std::size_t arrays_used_ = 0;
  std::uint64_t root_seed_ = 0;
  std::uint64_t next_tile_index_ = 0;  // used during Create only
  std::unique_ptr<ThreadPool> pool_;

  // Fault-tolerance machinery (engaged when params_.fault_tolerance.enabled).
  reliability::FaultInjector* injector_ = nullptr;  // not owned
  std::optional<reliability::AgingMonitor> monitor_;
  std::uint64_t committed_elements_ = 0;  // global element step counter
  FaultReport recovery_stats_;
  CostReport recovery_cost_;
};

}  // namespace cim::dpe
