// Behavioural DPE accelerator: actually executes a network on simulated
// analog crossbars (tiled MvmEngines per layer, digital bias/activation,
// im2col convolution). Slow but faithful — used for small networks, for
// accuracy experiments (quantization + analog error vs the float golden
// model), and to validate the analytical model's cost accounting.
//
// The inference runtime is batched and multi-threaded: independent engine
// tiles (and independent batch elements in InferBatch) execute concurrently
// on a host thread pool, mirroring how the modeled hardware fires all
// crossbars at once. Every MVM invocation draws its read noise from a
// stream derived from (root seed, tile index, call index), and partial
// sums / cost reports are merged in fixed tile order after each parallel
// region — so outputs and costs are bit-identical at any thread count, and
// InferBatch(N inputs) is bit-identical to N sequential Infer calls.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "crossbar/mvm_engine.h"
#include "dpe/params.h"
#include "nn/network.h"

namespace cim::dpe {

// One inference's output together with its fully accounted cost — the same
// pairing crossbar::MvmResult uses one layer down.
struct InferResult {
  nn::Tensor output;
  CostReport cost;
};

class DpeAccelerator {
 public:
  // Programs all layer weights onto crossbars (the slow write path).
  [[nodiscard]] static Expected<std::unique_ptr<DpeAccelerator>> Create(
      const DpeParams& params, const nn::Network& net, Rng rng);

  // Batch-1 inference. Engine tiles within each layer run in parallel on
  // the pool (params.worker_threads).
  [[nodiscard]] Expected<InferResult> Infer(const nn::Tensor& input);

  // Batched inference: batch elements run in parallel across the pool.
  // Outputs and per-element costs are bit-identical to calling Infer once
  // per input in order, at any thread count.
  [[nodiscard]] Expected<std::vector<InferResult>> InferBatch(
      std::span<const nn::Tensor> inputs);

  [[nodiscard]] const CostReport& program_cost() const {
    return program_cost_;
  }
  [[nodiscard]] std::size_t arrays_used() const { return arrays_used_; }
  // The pool executing tile/batch work; null when worker_threads == 1.
  [[nodiscard]] const ThreadPool* thread_pool() const { return pool_.get(); }

  // Fault-injection hook: flip one cell in the first engine of layer
  // `layer_index` (reliability experiments).
  Status InjectFault(std::size_t layer_index, std::size_t row,
                     std::size_t col, device::CellFault fault);

 private:
  struct EngineTile {
    crossbar::MvmEngine engine;
    std::size_t row_offset;  // input slice start
    std::size_t col_offset;  // output slice start
    std::size_t in;
    std::size_t out;
    // Root of this tile's noise-stream family: DeriveSeed(root_seed, tile
    // index). Each MVM invocation k on this tile draws from
    // Rng(DeriveSeed(noise_seed, k)).
    std::uint64_t noise_seed = 0;
  };
  struct MappedMvmLayer {
    std::vector<EngineTile> tiles;
    std::size_t in_dim;
    std::size_t out_dim;
    // MVM invocations one inference makes on this layer (1 for dense,
    // oh*ow pixels for conv) — the stride between batch elements in the
    // per-tile call numbering.
    std::uint64_t calls_per_inference = 1;
    // Calls already consumed by completed Infer/InferBatch requests.
    std::uint64_t committed_calls = 0;
  };

  DpeAccelerator(const DpeParams& params, const nn::Network& net);

  // Split an (in_dim x out_dim) matrix over crossbar-sized engine tiles.
  Status MapMatrix(std::span<const double> matrix, std::size_t in_dim,
                   std::size_t out_dim, Rng& rng, MappedMvmLayer* mapped);

  // Run one tiled MVM for call number `stream_offset` (relative to the
  // layer's committed_calls); returns out_dim partial sums (bias not
  // applied) plus the MVM's cost (latency = slowest tile, the tiles fire
  // concurrently in hardware). Tiles execute in parallel on the pool when
  // called outside an enclosing parallel region; the merge is serial in
  // tile order either way, so results never depend on scheduling.
  Expected<crossbar::MvmResult> RunMvm(const MappedMvmLayer& mapped,
                                       std::span<const double> x,
                                       std::uint64_t stream_offset);

  // Whole-network forward pass for one batch element. `element_index`
  // offsets every layer's noise-stream numbering by
  // element_index * calls_per_inference; callers commit the consumed calls
  // afterwards via CommitCalls.
  Expected<InferResult> RunElement(const nn::Tensor& input,
                                   std::uint64_t element_index);

  void CommitCalls(std::uint64_t elements);

  DpeParams params_;
  nn::Network net_;
  std::vector<MappedMvmLayer> mvm_layers_;  // one per dense/conv layer
  CostReport program_cost_;
  std::size_t arrays_used_ = 0;
  std::uint64_t root_seed_ = 0;
  std::uint64_t next_tile_index_ = 0;  // used during Create only
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cim::dpe
