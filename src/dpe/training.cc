#include "dpe/training.h"

#include <algorithm>
#include <cmath>

namespace cim::dpe {

Expected<std::unique_ptr<AnalogLayerTrainer>> AnalogLayerTrainer::Create(
    const TrainerParams& params, std::size_t in_dim, std::size_t out_dim,
    std::span<const double> initial_weights, Rng rng) {
  if (Status s = params.Validate(); !s.ok()) return s;
  if (initial_weights.size() != in_dim * out_dim) {
    return InvalidArgument("initial weight size mismatch");
  }
  std::unique_ptr<AnalogLayerTrainer> trainer(
      new AnalogLayerTrainer(params, in_dim, out_dim));
  auto engine = crossbar::MvmEngine::Create(params.engine, in_dim, out_dim,
                                            rng);
  if (!engine.ok()) return engine.status();
  trainer->engine_ =
      std::make_unique<crossbar::MvmEngine>(std::move(engine.value()));
  trainer->shadow_.assign(initial_weights.begin(), initial_weights.end());
  auto cost = trainer->engine_->ProgramWeights(initial_weights);
  if (!cost.ok()) return cost.status();
  trainer->report_.write_cost += *cost;
  return trainer;
}

AnalogLayerTrainer::AnalogLayerTrainer(const TrainerParams& params,
                                       std::size_t in_dim,
                                       std::size_t out_dim)
    : params_(params), in_dim_(in_dim), out_dim_(out_dim) {}

Expected<double> AnalogLayerTrainer::Step(std::span<const double> x,
                                          std::span<const double> target) {
  if (x.size() != in_dim_ || target.size() != out_dim_) {
    return InvalidArgument("sample dimension mismatch");
  }
  // Forward on the analog arrays.
  auto forward = engine_->Compute(x);
  if (!forward.ok()) return forward.status();
  report_.forward_cost += forward->cost;

  // MSE loss and output error.
  std::vector<double> error(out_dim_);
  double loss = 0.0;
  for (std::size_t o = 0; o < out_dim_; ++o) {
    error[o] = forward->y[o] - target[o];
    loss += error[o] * error[o];
  }
  loss /= static_cast<double>(out_dim_);

  // Backward through the arrays (computes W*e for a previous layer; also
  // exercises the transpose path even though this single layer only needs
  // the outer-product gradient).
  auto backward = engine_->ComputeTranspose(error);
  if (!backward.ok()) return backward.status();
  report_.backward_cost += backward->cost;

  // Digital shadow update: dW[r][c] = x[r] * error[c].
  for (std::size_t r = 0; r < in_dim_; ++r) {
    if (x[r] == 0.0) continue;
    for (std::size_t c = 0; c < out_dim_; ++c) {
      shadow_[r * out_dim_ + c] -=
          params_.learning_rate * x[r] * error[c];
      shadow_[r * out_dim_ + c] = std::clamp(
          shadow_[r * out_dim_ + c], -params_.engine.weight_range,
          params_.engine.weight_range);
    }
  }
  report_.digital_energy_pj += params_.digital_energy_per_op_pj *
                               static_cast<double>(in_dim_ * out_dim_);

  ++report_.samples;
  if (++steps_since_write_ >= params_.write_batch) {
    if (Status s = Flush(); !s.ok()) return s;
  }
  return loss;
}

Status AnalogLayerTrainer::Flush() {
  steps_since_write_ = 0;
  auto cost = engine_->UpdateWeights(shadow_);
  if (!cost.ok()) return cost.status();
  report_.write_cost += *cost;
  report_.cells_rewritten += cost->operations;
  return Status::Ok();
}

Expected<TrainingReport> AnalogLayerTrainer::Train(
    std::span<const std::vector<double>> inputs,
    std::span<const std::vector<double>> targets, int epochs) {
  if (inputs.size() != targets.size() || inputs.empty()) {
    return InvalidArgument("dataset shape mismatch");
  }
  if (epochs < 1) return InvalidArgument("epochs < 1");

  double first_epoch_loss = 0.0;
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      auto loss = Step(inputs[i], targets[i]);
      if (!loss.ok()) return loss.status();
      epoch_loss += *loss;
    }
    epoch_loss /= static_cast<double>(inputs.size());
    if (epoch == 0) first_epoch_loss = epoch_loss;
    last_epoch_loss = epoch_loss;
  }
  if (Status s = Flush(); !s.ok()) return s;
  TrainingReport report = report_;
  report.initial_loss = first_epoch_loss;
  report.final_loss = last_epoch_loss;
  return report;
}

}  // namespace cim::dpe
