// In-situ training on the DPE (§III.B: static-dataflow CIM "enables more
// opportunities for training, as well as feed-forward and closed loops";
// §VI: the asymmetric write latency is the cost being managed).
//
// Mixed-signal SGD in the style practical memristor trainers use:
//   * forward pass on the analog crossbars (MvmEngine::Compute),
//   * error backpropagation through the same arrays in the transpose
//     direction (MvmEngine::ComputeTranspose) — no separate weight copy,
//   * gradient accumulation in a digital float shadow of the weights,
//   * periodic write-sparse pushes of the shadow into the arrays
//     (MvmEngine::UpdateWeights), amortizing the slow writes.
// The trainer reports the analog/digital/write cost split so benchmarks
// can show where training time goes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "crossbar/mvm_engine.h"

namespace cim::dpe {

struct TrainerParams {
  crossbar::MvmEngineParams engine;
  double learning_rate = 0.05;
  // Push the shadow weights into the arrays every N samples; larger values
  // amortize writes at the cost of staler analog weights.
  int write_batch = 8;
  double digital_energy_per_op_pj = 1.0;  // shadow-update MACs

  [[nodiscard]] Status Validate() const {
    if (learning_rate <= 0.0) return InvalidArgument("learning_rate <= 0");
    if (write_batch < 1) return InvalidArgument("write_batch < 1");
    return engine.Validate();
  }
};

struct TrainingReport {
  int samples = 0;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  CostReport forward_cost;
  CostReport backward_cost;
  CostReport write_cost;
  double digital_energy_pj = 0.0;
  std::uint64_t cells_rewritten = 0;

  [[nodiscard]] double write_fraction_of_latency() const {
    const double total = forward_cost.latency_ns + backward_cost.latency_ns +
                         write_cost.latency_ns;
    return total > 0.0 ? write_cost.latency_ns / total : 0.0;
  }
};

// A single analog dense layer (in -> out, no bias) trained with MSE loss
// against provided targets. The common substrate for the training bench
// and tests; multi-layer training composes these.
class AnalogLayerTrainer {
 public:
  [[nodiscard]] static Expected<std::unique_ptr<AnalogLayerTrainer>> Create(
      const TrainerParams& params, std::size_t in_dim, std::size_t out_dim,
      std::span<const double> initial_weights, Rng rng);

  // One SGD step on (x, target); returns the per-sample MSE loss before
  // the update.
  [[nodiscard]] Expected<double> Step(std::span<const double> x,
                                      std::span<const double> target);

  // Train over the dataset for `epochs`; returns the aggregate report.
  [[nodiscard]] Expected<TrainingReport> Train(
      std::span<const std::vector<double>> inputs,
      std::span<const std::vector<double>> targets, int epochs);

  // Flush pending shadow weights into the arrays.
  Status Flush();

  [[nodiscard]] const std::vector<double>& shadow_weights() const {
    return shadow_;
  }
  [[nodiscard]] crossbar::MvmEngine& engine() { return *engine_; }

 private:
  AnalogLayerTrainer(const TrainerParams& params, std::size_t in_dim,
                     std::size_t out_dim);

  TrainerParams params_;
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::unique_ptr<crossbar::MvmEngine> engine_;
  std::vector<double> shadow_;  // float master copy of the weights
  int steps_since_write_ = 0;
  TrainingReport report_;
};

}  // namespace cim::dpe
