// Dot Product Engine configuration (§VI).
//
// The DPE is HPE's follow-on to ISAAC: crossbar in-situ MACs, 1-bit input
// streaming DACs, shared SAR ADCs, eDRAM activation buffers, digital
// shift-and-add and activation units. Constants below are in the ISAAC
// operating envelope (ISCA'16) — the substitution for the unpublished DPE
// silicon numbers. The §VI claims are order-of-magnitude ratios, which these
// constants preserve.
#pragma once

#include "common/status.h"
#include "crossbar/crossbar.h"
#include "reliability/aging_monitor.h"

namespace cim::dpe {

// Fault tolerance for the behavioural accelerator (§V.A): detection at
// engine-tile boundaries, retry/remap/degrade recovery, and a proactive
// aging loop. Off by default — the fault-free fast path is byte-for-byte
// the pre-existing runtime.
struct FaultToleranceParams {
  bool enabled = false;
  // Spare engine tiles pre-provisioned at Create; a detected-bad or retired
  // tile is reprogrammed onto one at the next wave boundary. 0 = recovery
  // degrades only (retry still runs).
  std::size_t spare_tiles = 0;
  // Re-executions of a detected-bad tile MVM before the element degrades.
  int max_retries = 1;
  // ABFT guard column per engine (§V.A "extra bits on data"): one extra
  // physical column holds scaled row sums; every MVM checks the sensed
  // guard output against the sum of the logical outputs.
  bool guard_column = true;
  double guard_margin = 1.5;  // see MvmEngineParams::guard_margin
  // Checksum the tile partial sums across the tile -> merge transfer
  // (catches transient in-flight corruption the in-array guard cannot).
  bool checksums = true;
  // Feed write/verify telemetry into the aging monitor and remap tiles it
  // retires before they fail.
  bool proactive_retirement = true;
  reliability::AgingParams aging;

  [[nodiscard]] Status Validate() const {
    if (max_retries < 0) return InvalidArgument("max_retries must be >= 0");
    if (guard_margin <= 0.0) {
      return InvalidArgument("guard_margin must be positive");
    }
    return aging.Validate();
  }
};

struct DpeParams {
  crossbar::CrossbarParams array;  // 128x128, 2-bit cells, 8-bit shared ADC
  int weight_bits = 8;
  int input_bits = 8;

  // eDRAM activation buffer.
  double buffer_energy_per_byte_pj = 0.5;
  double buffer_bandwidth_gbps = 160.0;  // per tile

  // Digital periphery.
  double shift_add_energy_pj = 0.05;     // per output per cycle
  double activation_energy_pj = 0.2;     // per element (sigmoid/ReLU LUT)
  double activation_latency_ns = 0.5;    // per vector (pipelined)

  // On-chip H-tree interconnect between tiles.
  double htree_energy_per_byte_pj = 1.5;
  double htree_latency_ns = 20.0;        // per inter-layer transfer

  // Static (leakage + clocking) power per active array, watts.
  double static_power_per_array_w = 2.4e-4;

  // Convolution layers are replicated this many times so pixels process in
  // parallel (ISAAC's throughput-balancing replication; early conv layers
  // are tiny, so heavy replication is cheap in arrays).
  std::size_t conv_replication = 128;

  // Host-side concurrency of the behavioural accelerator: total number of
  // threads (including the calling thread) the inference runtime may use
  // for independent engine-tile MVMs and batch elements. 0 means "use the
  // host's hardware concurrency"; 1 forces the serial path. Purely a
  // simulation-speed knob — results are bit-identical at every setting
  // (see DESIGN.md § Threading and determinism).
  std::size_t worker_threads = 0;

  // §V.A fault tolerance (disabled by default).
  FaultToleranceParams fault_tolerance;

  // Physical capacity used by the multi-board scaling model.
  std::size_t arrays_per_board = 8192;
  // Board-to-board interconnect.
  double board_link_bandwidth_gbps = 25.0;
  double board_link_latency_ns = 500.0;
  double board_link_energy_per_byte_pj = 10.0;

  [[nodiscard]] static DpeParams Isaac() {
    DpeParams p;
    p.array.rows = 128;
    p.array.cols = 128;
    p.array.cell.cell_bits = 2;
    p.array.cell.read_latency = TimeNs(10.0);
    p.array.cell.set_latency = TimeNs(100.0);
    p.array.cell.reset_latency = TimeNs(1000.0);
    p.array.cell.read_energy = EnergyPj(0.01);  // low-voltage in-situ MAC
    p.array.cell.write_energy = EnergyPj(100.0);
    p.array.adc.bits = 8;
    p.array.dac.bits = 1;
    p.array.columns_per_adc = 128;
    return p;
  }

  [[nodiscard]] Status Validate() const {
    if (weight_bits < 2 || input_bits < 1) {
      return InvalidArgument("bad precision configuration");
    }
    if (arrays_per_board == 0) {
      return InvalidArgument("arrays_per_board == 0");
    }
    if (Status s = fault_tolerance.Validate(); !s.ok()) return s;
    return array.Validate();
  }

  [[nodiscard]] int slices() const {
    return (weight_bits - 1 + array.cell.cell_bits - 1) /
           array.cell.cell_bits;
  }

  // Latency of one analog bit-cycle (DAC settle + read pulse + the serial
  // conversions of one shared ADC over the gated columns).
  [[nodiscard]] double CycleLatencyNs(std::size_t used_cols = 0) const {
    if (used_cols == 0 || used_cols > array.cols) used_cols = array.cols;
    const double conversions =
        static_cast<double>(std::min(array.columns_per_adc, used_cols));
    return array.dac.settle_latency.ns + array.cell.read_latency.ns +
           conversions * array.adc.conversion_latency().ns;
  }

  // Energy of one analog bit-cycle of one array with `active_rows` driven
  // and `used_cols` carrying programmed weights. Cell read energy is
  // conductance-proportional: the used region averages half of g_on for
  // random weights; the unused region sits at g_off (negligible).
  [[nodiscard]] double CycleEnergyPj(std::size_t active_rows,
                                     std::size_t used_cols = 0) const {
    if (used_cols == 0 || used_cols > array.cols) used_cols = array.cols;
    constexpr double kAvgConductanceFraction = 0.5;
    const double g_ratio =
        array.cell.g_off_siemens / array.cell.g_on_siemens;
    const double cell_energy =
        static_cast<double>(active_rows) * array.cell.read_energy.pj *
        (static_cast<double>(used_cols) * kAvgConductanceFraction +
         static_cast<double>(array.cols - used_cols) * g_ratio);
    const double adc_energy = static_cast<double>(used_cols) *
                              array.adc.conversion_energy().pj;
    const double dac_energy = static_cast<double>(active_rows) *
                              array.dac.drive_energy.pj;
    return cell_energy + adc_energy + dac_energy;
  }
};

}  // namespace cim::dpe
