// DPE silicon area model (§VI's "scale" axis in its physical dimension).
//
// Per-array area decomposes into the crossbar itself (tiny — memristor
// cells sit above the logic at ~4F^2) and the periphery that dominates:
// the shared ADC, row DACs/drivers, and the digital shift-and-add.
// Constants are 32 nm-class, in the envelope ISAAC reports (whole chip
// ~85 mm^2 for ~12k arrays plus buffers).
#pragma once

#include <cmath>

#include "common/status.h"
#include "dpe/analytical.h"
#include "dpe/params.h"
#include "nn/network.h"

namespace cim::dpe {

struct AreaParams {
  double cell_pitch_um = 0.2;        // crossbar cell pitch
  double adc_area_um2 = 3000.0;      // 8-bit SAR at the reference node
  int adc_reference_bits = 8;        // ADC area ~2^bits around this point
  double dac_area_per_row_um2 = 4.0;
  double shift_add_area_um2 = 1100.0;
  double tile_overhead_um2_per_array = 2000.0;  // eDRAM + router share
};

class AreaModel {
 public:
  explicit AreaModel(AreaParams area = {}, DpeParams dpe = DpeParams::Isaac())
      : area_(area), dpe_(std::move(dpe)) {}

  // One crossbar array plus its periphery share, in um^2.
  [[nodiscard]] double ArrayAreaUm2() const {
    const double crossbar =
        static_cast<double>(dpe_.array.rows) * area_.cell_pitch_um *
        static_cast<double>(dpe_.array.cols) * area_.cell_pitch_um;
    const double adcs =
        std::ceil(static_cast<double>(dpe_.array.cols) /
                  static_cast<double>(dpe_.array.columns_per_adc)) *
        area_.adc_area_um2 *
        std::ldexp(1.0, dpe_.array.adc.bits - area_.adc_reference_bits);
    const double dacs = static_cast<double>(dpe_.array.rows) *
                        area_.dac_area_per_row_um2;
    return crossbar + adcs + dacs + area_.shift_add_area_um2 +
           area_.tile_overhead_um2_per_array;
  }

  [[nodiscard]] double ChipAreaMm2(std::size_t arrays) const {
    return static_cast<double>(arrays) * ArrayAreaUm2() * 1e-6;
  }

  // Silicon area to hold a network's weights resident (one replica).
  [[nodiscard]] Expected<double> NetworkAreaMm2(const nn::Network& net) const {
    AnalyticalDpeModel model(dpe_);
    auto estimate = model.EstimateInference(net);
    if (!estimate.ok()) return estimate.status();
    return ChipAreaMm2(estimate->arrays_used);
  }

  [[nodiscard]] const DpeParams& dpe() const { return dpe_; }

 private:
  AreaParams area_;
  DpeParams dpe_;
};

}  // namespace cim::dpe
