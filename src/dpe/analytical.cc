#include "dpe/analytical.h"

#include <algorithm>
#include <cmath>
#include <variant>

namespace cim::dpe {
namespace {

std::size_t OutDim(std::size_t in, std::size_t kernel, std::size_t stride,
                   std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

std::size_t CeilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

Expected<std::vector<LayerMapping>> AnalyticalDpeModel::MapNetwork(
    const nn::Network& net) const {
  if (Status s = params_.Validate(); !s.ok()) return s;
  if (Status s = net.Validate(); !s.ok()) return s;

  const std::size_t rows = params_.array.rows;
  const std::size_t cols = params_.array.cols;
  const std::size_t arrays_per_engine = 2 * params_.slices();

  std::vector<LayerMapping> mappings;
  std::vector<std::size_t> shape = net.input_shape;
  for (const nn::Layer& layer : net.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    LayerMapping m;
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      m.kind = "dense";
      m.in_dim = dense->in_features;
      m.out_dim = dense->out_features;
      m.row_tiles = CeilDiv(m.in_dim, rows);
      m.col_tiles = CeilDiv(m.out_dim, cols);
      m.arrays = m.row_tiles * m.col_tiles * arrays_per_engine;
      m.mvm_invocations = 1;
      shape = {dense->out_features};
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      const std::size_t oh =
          OutDim(shape[1], conv->kernel, conv->stride, conv->padding);
      const std::size_t ow =
          OutDim(shape[2], conv->kernel, conv->stride, conv->padding);
      m.kind = "conv";
      m.in_dim = conv->in_channels * conv->kernel * conv->kernel;
      m.out_dim = conv->out_channels;
      m.row_tiles = CeilDiv(m.in_dim, rows);
      m.col_tiles = CeilDiv(m.out_dim, cols);
      m.arrays = m.row_tiles * m.col_tiles * arrays_per_engine *
                 params_.conv_replication;
      m.mvm_invocations = static_cast<std::uint64_t>(oh) * ow;
      shape = {conv->out_channels, oh, ow};
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      m.kind = "pool";
      m.in_dim = shape[0];
      m.out_dim = shape[0];
      m.mvm_invocations =
          static_cast<std::uint64_t>(OutDim(shape[1], pool->window,
                                            pool->stride, 0)) *
          OutDim(shape[2], pool->window, pool->stride, 0);
      shape = {shape[0], OutDim(shape[1], pool->window, pool->stride, 0),
               OutDim(shape[2], pool->window, pool->stride, 0)};
    }
    mappings.push_back(m);
  }
  return mappings;
}

Expected<InferenceEstimate> AnalyticalDpeModel::EstimateInference(
    const nn::Network& net) const {
  auto mappings = MapNetwork(net);
  if (!mappings.ok()) return mappings.status();

  const std::size_t rows = params_.array.rows;
  const std::size_t cols = params_.array.cols;

  InferenceEstimate est;
  est.macs = net.TotalMacs();

  // Pipeline model: fill = one invocation per layer; steady state is
  // bottlenecked by the layer with the most serialized invocations.
  double fill_latency = 0.0;
  double bottleneck_latency = 0.0;

  for (const LayerMapping& m : *mappings) {
    if (m.kind == "pool") {
      // Digital comparator pass, pipelined with the conv layers.
      const double elements = static_cast<double>(m.mvm_invocations) *
                              static_cast<double>(m.out_dim);
      est.energy_pj += elements * params_.activation_energy_pj;
      est.buffer_bytes += elements;  // one byte per activation through eDRAM
      continue;
    }
    est.arrays_used += m.arrays;

    // Columns actually carrying weights in each array of this layer.
    const auto used_cols = static_cast<std::size_t>(
        static_cast<double>(m.out_dim) / static_cast<double>(m.col_tiles));

    // One MVM invocation: input_bits analog cycles across all the layer's
    // engines in parallel.
    const double inv_latency =
        params_.input_bits * params_.CycleLatencyNs(used_cols) +
        params_.activation_latency_ns;

    // Serialized invocations after replication.
    const std::size_t replication =
        m.kind == "conv" ? params_.conv_replication : 1;
    const std::uint64_t serialized =
        CeilDiv(m.mvm_invocations, replication);

    fill_latency += inv_latency;
    bottleneck_latency = std::max(
        bottleneck_latency, static_cast<double>(serialized) * inv_latency);

    // --- energy -----------------------------------------------------------
    // Analog cycles: per invocation, every array fires input_bits times.
    // Average active rows: full tiles drive all `rows`, the last row-tile
    // drives the remainder.
    const double avg_active_rows =
        static_cast<double>(m.in_dim) / static_cast<double>(m.row_tiles);
    const double arrays_per_invocation =
        static_cast<double>(m.arrays) / static_cast<double>(replication);
    const double analog_energy_per_inv =
        arrays_per_invocation * params_.input_bits *
        params_.CycleEnergyPj(static_cast<std::size_t>(avg_active_rows),
                              used_cols);
    // Digital merge: shift-and-add across slices, planes and row tiles.
    const double shift_add_per_inv =
        static_cast<double>(m.out_dim * m.row_tiles) * params_.input_bits *
        params_.shift_add_energy_pj;
    const double activation_per_inv =
        static_cast<double>(m.out_dim) * params_.activation_energy_pj;
    // Buffer + H-tree traffic (8-bit activations).
    const double buffer_bytes_per_inv =
        static_cast<double>(m.in_dim) + static_cast<double>(m.out_dim);
    const double buffer_energy_per_inv =
        buffer_bytes_per_inv * params_.buffer_energy_per_byte_pj +
        static_cast<double>(m.out_dim) * params_.htree_energy_per_byte_pj;

    est.energy_pj += static_cast<double>(m.mvm_invocations) *
                     (analog_energy_per_inv + shift_add_per_inv +
                      activation_per_inv + buffer_energy_per_inv);
    est.buffer_bytes +=
        static_cast<double>(m.mvm_invocations) * buffer_bytes_per_inv;

    // Weight bytes touched in-array: every analog cycle reads the weights
    // stored on the active rows of the gated columns of every array.
    est.weight_bytes_touched +=
        static_cast<double>(m.mvm_invocations) * params_.input_bits *
        arrays_per_invocation * avg_active_rows *
        static_cast<double>(used_cols) * params_.array.cell.cell_bits / 8.0;

    // Programming (done once; arrays program row-serially, all arrays in
    // parallel). Average one program-verify iteration per row in the
    // analytical model.
    const double per_row_program =
        params_.array.cell.set_latency.ns + params_.array.cell.read_latency.ns;
    est.program_latency_ns =
        std::max(est.program_latency_ns,
                 static_cast<double>(rows) * per_row_program);
    est.program_energy_pj +=
        static_cast<double>(m.arrays * rows * cols) *
        (params_.array.cell.write_energy.pj + params_.array.cell.read_energy.pj);
  }

  est.latency_ns = fill_latency + bottleneck_latency;
  // Static power of resident arrays over the inference.
  est.energy_pj += params_.static_power_per_array_w *
                   static_cast<double>(est.arrays_used) * est.latency_ns *
                   1e3;  // W * ns = 1e-9 J = 1e3 pJ... (1 W*ns = 1e3 pJ)
  return est;
}

}  // namespace cim::dpe
