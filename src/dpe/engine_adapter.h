// baseline::ComputeEngine adapter for the DPE.
//
// The §VI comparison benches iterate one polymorphic list of engines (CPU,
// GPU, PIM, DPE) instead of special-casing the DPE's richer
// InferenceEstimate. The adapter folds the estimate into the common
// EngineCost currency; the DPE-only fields (arrays used, programming cost)
// stay available through model() for callers that want them.
#pragma once

#include <string>

#include "baseline/compute_engine.h"
#include "dpe/analytical.h"

namespace cim::dpe {

class DpeEngine final : public baseline::ComputeEngine {
 public:
  explicit DpeEngine(DpeParams params = DpeParams::Isaac())
      : model_(std::move(params)) {}

  [[nodiscard]] std::string name() const override { return "dpe"; }

  // latency/energy/macs map directly. dram_bytes is the input and output
  // activations only (1 byte each at 8-bit precision): weights are resident
  // in the arrays after programming and never cross the off-chip memory
  // interface — the CIM premise the comparison exists to show.
  [[nodiscard]] Expected<baseline::EngineCost> EstimateInference(
      const nn::Network& net) const override;

  [[nodiscard]] const AnalyticalDpeModel& model() const { return model_; }

 private:
  AnalyticalDpeModel model_;
};

}  // namespace cim::dpe
