#include "dpe/accelerator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <variant>

#include "common/contracts.h"
#include "reliability/detection.h"

namespace cim::dpe {
namespace {

// Seed salts separating a tile's remap streams from its MVM noise streams.
// Replacement engines are keyed by (base_seed, generation) — never by spare
// claim order — so recovery is deterministic at any thread count.
constexpr std::uint64_t kRemapEngineSalt = 0x52454d31ULL;  // "REM1"
constexpr std::uint64_t kRemapNoiseSalt = 0x52454d32ULL;   // "REM2"

std::size_t OutDim(std::size_t in, std::size_t kernel, std::size_t stride,
                   std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

double Activate(double v, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone: return v;
    case nn::Activation::kRelu: return std::max(v, 0.0);
    case nn::Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

crossbar::MvmEngineParams MakeEngineParams(const DpeParams& params) {
  crossbar::MvmEngineParams engine_params;
  engine_params.array = params.array;
  engine_params.weight_bits = params.weight_bits;
  engine_params.input_bits = params.input_bits;
  if (params.fault_tolerance.enabled &&
      params.fault_tolerance.guard_column) {
    engine_params.guard_column = true;
    engine_params.guard_margin = params.fault_tolerance.guard_margin;
  }
  return engine_params;
}

}  // namespace

DpeAccelerator::DpeAccelerator(const DpeParams& params,
                               const nn::Network& net)
    : params_(params), net_(net) {}

Expected<std::unique_ptr<DpeAccelerator>> DpeAccelerator::Create(
    const DpeParams& params, const nn::Network& net, Rng rng) {
  if (Status s = params.Validate(); !s.ok()) return s;
  if (Status s = net.Validate(); !s.ok()) return s;
  std::unique_ptr<DpeAccelerator> acc(new DpeAccelerator(params, net));
  // Root of every per-tile noise-stream family; drawn first so the tile
  // seeds do not depend on how the programming path consumes the rng.
  acc->root_seed_ = rng.NextU64();

  if (params.fault_tolerance.enabled) {
    auto monitor =
        reliability::AgingMonitor::Create(params.fault_tolerance.aging);
    if (!monitor.ok()) return monitor.status();
    acc->monitor_.emplace(std::move(monitor.value()));
  }

  for (const nn::Layer& layer : net.layers) {
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(dense->weights, dense->in_features,
                                    dense->out_features, rng, &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      // im2col weight matrix: (ic*k*k) x oc, row-major.
      const std::size_t k = conv->kernel;
      const std::size_t in_dim = conv->in_channels * k * k;
      std::vector<double> matrix(in_dim * conv->out_channels, 0.0);
      for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
        for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t row = (ic * k + ky) * k + kx;
              matrix[row * conv->out_channels + oc] =
                  conv->weights[((oc * conv->in_channels + ic) * k + ky) * k +
                                kx];
            }
          }
        }
      }
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(matrix, in_dim, conv->out_channels, rng,
                                    &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    }
  }
  for (std::size_t i = 0; i < acc->mvm_layers_.size(); ++i) {
    acc->mvm_layers_[i].layer_index = i;
    acc->mvm_layers_[i].target = "dpe.layer" + std::to_string(i);
  }

  // Pre-provision the spares pool; ids continue after the active tiles.
  if (acc->monitor_) {
    const auto spare_base = static_cast<std::uint32_t>(acc->next_tile_index_);
    for (std::size_t i = 0; i < params.fault_tolerance.spare_tiles; ++i) {
      if (Status s = acc->monitor_->AddUnit(
              spare_base + static_cast<std::uint32_t>(i), /*is_spare=*/true);
          !s.ok()) {
        return s;
      }
    }
  }

  // Walk the shapes once to fix each layer's calls-per-inference (the
  // stride between batch elements in the per-tile noise-stream numbering).
  std::vector<std::size_t> shape = net.input_shape;
  std::size_t mvm_index = 0;
  for (const nn::Layer& layer : net.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      acc->mvm_layers_[mvm_index++].calls_per_inference = 1;
      shape = {dense->out_features};
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      const std::size_t oh =
          OutDim(shape[1], conv->kernel, conv->stride, conv->padding);
      const std::size_t ow =
          OutDim(shape[2], conv->kernel, conv->stride, conv->padding);
      acc->mvm_layers_[mvm_index++].calls_per_inference =
          static_cast<std::uint64_t>(oh) * ow;
      shape = {conv->out_channels, oh, ow};
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      shape = {shape[0], OutDim(shape[1], pool->window, pool->stride, 0),
               OutDim(shape[2], pool->window, pool->stride, 0)};
    }
  }

  const std::size_t threads = params.worker_threads == 0
                                  ? HardwareConcurrency()
                                  : params.worker_threads;
  if (threads > 1) {
    // The calling thread participates in every parallel region, so the
    // pool holds one fewer background worker than the requested total.
    acc->pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  return acc;
}

Status DpeAccelerator::MapMatrix(std::span<const double> matrix,
                                 std::size_t in_dim, std::size_t out_dim,
                                 Rng& rng, MappedMvmLayer* mapped) {
  const std::size_t rows = params_.array.rows;
  mapped->in_dim = in_dim;
  mapped->out_dim = out_dim;

  const crossbar::MvmEngineParams engine_params = MakeEngineParams(params_);
  // The guard column occupies one physical column per engine, so guarded
  // tiles carry one fewer logical output each.
  const std::size_t cols =
      engine_params.guard_column ? params_.array.cols - 1 : params_.array.cols;
  CIM_REQUIRE(cols > 0, InvalidArgument("array too narrow for guard column"));

  for (std::size_t r0 = 0; r0 < in_dim; r0 += rows) {
    const std::size_t r_len = std::min(rows, in_dim - r0);
    for (std::size_t c0 = 0; c0 < out_dim; c0 += cols) {
      const std::size_t c_len = std::min(cols, out_dim - c0);
      auto engine = crossbar::MvmEngine::Create(engine_params, r_len, c_len,
                                                rng.Fork());
      if (!engine.ok()) return engine.status();
      // Extract the submatrix.
      std::vector<double> sub(r_len * c_len);
      for (std::size_t r = 0; r < r_len; ++r) {
        for (std::size_t c = 0; c < c_len; ++c) {
          sub[r * c_len + c] = matrix[(r0 + r) * out_dim + (c0 + c)];
        }
      }
      auto cost = engine->ProgramWeights(sub);
      if (!cost.ok()) return cost.status();
      // Tiles program in parallel across engines; serialize within none.
      program_cost_.energy_pj += cost->energy_pj;
      program_cost_.latency_ns =
          std::max(program_cost_.latency_ns, cost->latency_ns);
      program_cost_.operations += cost->operations;
      arrays_used_ += 2 * static_cast<std::size_t>(engine_params.slices());
      EngineTile tile{std::move(engine.value()), r0, c0, r_len, c_len,
                      DeriveSeed(root_seed_, next_tile_index_),
                      /*base_seed=*/0, /*generation=*/0, /*unit_id=*/0,
                      /*submatrix=*/{}, /*ft=*/nullptr};
      tile.base_seed = tile.noise_seed;
      if (ft_enabled()) {
        tile.unit_id = static_cast<std::uint32_t>(next_tile_index_);
        tile.submatrix = std::move(sub);  // kept for spare reprogramming
        tile.ft = std::make_unique<TileFtState>();
        if (Status s = monitor_->AddUnit(tile.unit_id); !s.ok()) return s;
      }
      ++next_tile_index_;
      mapped->tiles.push_back(std::move(tile));
    }
  }
  return Status::Ok();
}

Status DpeAccelerator::AttachFaultInjector(
    reliability::FaultInjector* injector) {
  if (injector == nullptr) return InvalidArgument("null fault injector");
  for (MappedMvmLayer& layer : mvm_layers_) {
    reliability::InjectionHooks hooks;
    hooks.tiles = layer.tiles.size();
    MappedMvmLayer* lp = &layer;
    hooks.tile_dims =
        [lp](std::size_t t) -> std::pair<std::size_t, std::size_t> {
      const EngineTile& tile = lp->tiles.at(t);
      return {tile.in, tile.out};
    };
    hooks.inject_cell = [lp](std::size_t t, std::size_t row, std::size_t col,
                             int plane, bool stuck_on) {
      lp->tiles.at(t).engine.InjectCellFaultAllSlices(
          plane, row, col,
          stuck_on ? device::CellFault::kStuckOn
                   : device::CellFault::kStuckOff);
    };
    hooks.drift = [lp](std::size_t t, double drift_ns) {
      lp->tiles.at(t).engine.Age(TimeNs(drift_ns));
    };
    if (ft_enabled()) {
      // Tile death is a recovery-layer concept: without fault tolerance
      // there is no dead flag to honour, so the hook stays unset and
      // scenarios demanding it fail Arm() with a clear error.
      DpeAccelerator* self = this;
      hooks.kill_tile = [self, lp](std::size_t t) {
        EngineTile& tile = lp->tiles.at(t);
        tile.ft->dead.store(true, std::memory_order_release);
        if (self->monitor_) {
          CIM_CHECK(self->monitor_->RecordFailure(tile.unit_id).ok());
        }
      };
    }
    if (Status s = injector->RegisterHooks(layer.target, std::move(hooks));
        !s.ok()) {
      return s;
    }
  }
  injector_ = injector;
  return Status::Ok();
}

Expected<crossbar::MvmResult> DpeAccelerator::RunMvm(
    const MappedMvmLayer& mapped, std::span<const double> x,
    std::uint64_t stream_offset, std::uint64_t element_step,
    ElementTrace* trace) {
  if (x.size() != mapped.in_dim) {
    return InvalidArgument("MVM input dimension mismatch");
  }
  const std::uint64_t call = mapped.committed_calls + stream_offset;
  const std::size_t tiles = mapped.tiles.size();
  const bool ft = ft_enabled();
  const FaultToleranceParams& ftp = params_.fault_tolerance;

  struct TilePartial {
    std::optional<Expected<crossbar::MvmResult>> result;
    reliability::GuardedPayload payload;  // sealed tile -> merge transfer
    bool sealed = false;
  };
  std::vector<TilePartial> partials(tiles);

  const auto run_tile = [&](std::size_t t) {
    // MvmEngine::Compute with an external rng mutates no engine state, so
    // tiles (and concurrent batch elements touching the same tile) are
    // safe to run on any thread; the draw sequence depends only on the
    // (tile, call) pair.
    auto& tile = const_cast<EngineTile&>(mapped.tiles[t]);
    if (tile.ft != nullptr &&
        tile.ft->dead.load(std::memory_order_acquire)) {
      partials[t].result.emplace(Unavailable("engine tile is dead"));
      return;
    }
    Rng noise(DeriveSeed(tile.noise_seed, call));
    auto computed =
        tile.engine.Compute(x.subspan(tile.row_offset, tile.in), &noise);
    if (computed.ok()) {
      if (ft && ftp.checksums) {
        // Seal models the tile -> merge transfer; corruption injected
        // below lands "in flight" and is caught at the merge boundary.
        partials[t].payload =
            reliability::GuardedPayload::Seal(std::move(computed->y));
        partials[t].sealed = true;
      }
      if (injector_ != nullptr) {
        // Consulted exactly once per (tile, call) — on the first attempt
        // only: a transient is gone by the time a retry re-runs the tile.
        const double perturb = injector_->TransientPerturbation(
            mapped.target, t, element_step, call);
        if (perturb != 0.0) {
          auto& values =
              partials[t].sealed ? partials[t].payload.values : computed->y;
          for (double& v : values) v *= (1.0 + perturb);
        }
      }
    }
    partials[t].result.emplace(std::move(computed));
  };

  if (pool_ != nullptr && tiles > 1 && !ThreadPool::InParallelRegion()) {
    pool_->ParallelFor(tiles, run_tile);
  } else {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
  }

  // Deterministic merge in tile order: partial sums, energy and operation
  // counts accumulate in the same order the serial path used, and the MVM
  // latency is the slowest tile (they fire concurrently in hardware).
  // This is the tile boundary of §V.A: each partial is checked (guard
  // column verdict + transfer checksum) before it may touch the merged
  // output, and retries re-run the tile serially right here.
  crossbar::MvmResult merged;
  merged.y.assign(mapped.out_dim, 0.0);
  double max_tile_latency = 0.0;
  double retry_latency = 0.0;
  for (std::size_t t = 0; t < tiles; ++t) {
    Expected<crossbar::MvmResult>& partial = *partials[t].result;
    auto& tile = const_cast<EngineTile&>(mapped.tiles[t]);

    if (!ft) {
      if (!partial.ok()) return partial.status();
      for (std::size_t c = 0; c < tile.out; ++c) {
        merged.y[tile.col_offset + c] += partial->y[c];
      }
      merged.cost.energy_pj += partial->cost.energy_pj;
      merged.cost.operations += partial->cost.operations;
      max_tile_latency = std::max(max_tile_latency, partial->cost.latency_ns);
      continue;
    }

    const auto note_guard = [&](const crossbar::MvmResult& r) {
      if (!r.guard_checked) return;
      tile.ft->guard_checks.fetch_add(1, std::memory_order_relaxed);
      if (!r.guard_ok) {
        tile.ft->guard_failures.fetch_add(1, std::memory_order_relaxed);
      }
    };

    bool tile_ok = false;
    bool dead = false;
    if (partial.ok()) {
      note_guard(*partial);
      const bool guard_bad = partial->guard_checked && !partial->guard_ok;
      const bool transfer_bad =
          partials[t].sealed && !partials[t].payload.Verify().ok();
      tile_ok = !guard_bad && !transfer_bad;
      merged.cost.energy_pj += partial->cost.energy_pj;
      merged.cost.operations += partial->cost.operations;
      max_tile_latency = std::max(max_tile_latency, partial->cost.latency_ns);
    } else if (partial.status().code() == ErrorCode::kUnavailable) {
      dead = true;  // dead tile: detect, contribute zeros, flag for remap
    } else {
      return partial.status();
    }

    if (!tile_ok) ++trace->report.detected;

    // Retry on the same engine with an attempt-salted noise stream. A
    // transient (gone on re-run) passes on the first retry; stuck cells
    // keep tripping the guard and fall through to degrade.
    if (!tile_ok && !dead) {
      for (int a = 1; a <= ftp.max_retries && !tile_ok; ++a) {
        ++trace->report.retried;
        Rng noise(DeriveSeed(DeriveSeed(tile.noise_seed, call),
                             static_cast<std::uint64_t>(a)));
        auto retry =
            tile.engine.Compute(x.subspan(tile.row_offset, tile.in), &noise);
        if (!retry.ok()) return retry.status();
        note_guard(*retry);
        merged.cost.energy_pj += retry->cost.energy_pj;
        merged.cost.operations += retry->cost.operations;
        retry_latency += retry->cost.latency_ns;  // retries serialize
        if (!(retry->guard_checked && !retry->guard_ok)) {
          partial = std::move(retry);
          partials[t].sealed = false;  // re-transfer is clean
          tile_ok = true;
        }
      }
    }

    if (tile_ok || (!dead && partial.ok())) {
      // Merge the (possibly degraded) partial; a dead tile contributes
      // zeros instead of poisoning the element.
      const std::vector<double>& values =
          partials[t].sealed ? partials[t].payload.values : partial->y;
      for (std::size_t c = 0; c < tile.out; ++c) {
        merged.y[tile.col_offset + c] += values[c];
      }
    }
    if (!tile_ok) {
      ++trace->report.degraded;
      tile.ft->needs_remap.store(true, std::memory_order_release);
      trace->flagged.emplace_back(mapped.layer_index, t);
    }
  }
  merged.cost.latency_ns = max_tile_latency + retry_latency;
  return merged;
}

Expected<InferResult> DpeAccelerator::RunElement(
    const nn::Tensor& input, std::uint64_t element_index,
    ElementTrace* trace) {
  nn::Tensor current = input;
  std::size_t mvm_index = 0;
  CostReport cost;
  const std::uint64_t element_step = committed_elements_ + element_index;

  const auto account_activation = [&](std::size_t elements) {
    cost.energy_pj +=
        static_cast<double>(elements) * params_.activation_energy_pj;
    cost.latency_ns += params_.activation_latency_ns;
  };
  const auto account_buffer = [&](std::size_t bytes) {
    cost.energy_pj +=
        static_cast<double>(bytes) * params_.buffer_energy_per_byte_pj;
  };

  for (const nn::Layer& layer : net_.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) &&
        current.rank() == 3) {
      current = nn::Tensor({current.size()}, current.vec());
    }
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      const MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      account_buffer(mapped.in_dim + mapped.out_dim);
      auto mvm = RunMvm(mapped, current.vec(),
                        element_index * mapped.calls_per_inference,
                        element_step, trace);
      if (!mvm.ok()) return mvm.status();
      cost.energy_pj += mvm->cost.energy_pj;
      cost.operations += mvm->cost.operations;
      cost.latency_ns += mvm->cost.latency_ns;
      std::vector<double> y = std::move(mvm->y);
      for (std::size_t o = 0; o < dense->out_features; ++o) {
        y[o] = Activate(y[o] + dense->bias[o], dense->activation);
      }
      account_activation(dense->out_features);
      current = nn::Tensor({dense->out_features}, std::move(y));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      const MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      const std::size_t k = conv->kernel;
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, k, conv->stride, conv->padding);
      const std::size_t ow = OutDim(iw, k, conv->stride, conv->padding);
      nn::Tensor out({conv->out_channels, oh, ow});
      std::vector<double> column(mapped.in_dim, 0.0);
      // Latency model mirrors the analytical pipeline: pixels serialize in
      // groups of conv_replication; energy counts every pixel.
      double pixel_latency = 0.0;
      std::uint64_t pixels = 0;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // im2col gather.
          std::fill(column.begin(), column.end(), 0.0);
          for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy =
                    static_cast<std::int64_t>(oy * conv->stride + ky) -
                    static_cast<std::int64_t>(conv->padding);
                const std::int64_t ix =
                    static_cast<std::int64_t>(ox * conv->stride + kx) -
                    static_cast<std::int64_t>(conv->padding);
                if (iy < 0 || ix < 0 || iy >= static_cast<std::int64_t>(ih) ||
                    ix >= static_cast<std::int64_t>(iw)) {
                  continue;
                }
                column[(ic * k + ky) * k + kx] =
                    current.at3(ic, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
              }
            }
          }
          auto mvm = RunMvm(mapped, column,
                            element_index * mapped.calls_per_inference +
                                pixels,
                            element_step, trace);
          if (!mvm.ok()) return mvm.status();
          cost.energy_pj += mvm->cost.energy_pj;
          cost.operations += mvm->cost.operations;
          pixel_latency = std::max(pixel_latency, mvm->cost.latency_ns);
          ++pixels;
          for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
            out.at3(oc, oy, ox) =
                Activate(mvm->y[oc] + conv->bias[oc], conv->activation);
          }
        }
      }
      const std::uint64_t serialized =
          (pixels + params_.conv_replication - 1) / params_.conv_replication;
      cost.latency_ns += static_cast<double>(serialized) * pixel_latency;
      account_activation(conv->out_channels * oh * ow);
      account_buffer((mapped.in_dim + conv->out_channels) * pixels);
      current = std::move(out);
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      const std::size_t channels = current.shape()[0];
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, pool->window, pool->stride, 0);
      const std::size_t ow = OutDim(iw, pool->window, pool->stride, 0);
      nn::Tensor out({channels, oh, ow});
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double best = -1e300;
            for (std::size_t ky = 0; ky < pool->window; ++ky) {
              for (std::size_t kx = 0; kx < pool->window; ++kx) {
                best = std::max(best, current.at3(c, oy * pool->stride + ky,
                                                  ox * pool->stride + kx));
              }
            }
            out.at3(c, oy, ox) = best;
          }
        }
      }
      account_activation(channels * oh * ow);
      current = std::move(out);
    }
  }
  return InferResult{std::move(current), cost, FaultReport{}, CostReport{}};
}

void DpeAccelerator::CommitCalls(std::uint64_t elements) {
  for (MappedMvmLayer& layer : mvm_layers_) {
    layer.committed_calls += elements * layer.calls_per_inference;
  }
}

Status DpeAccelerator::RemapTile(EngineTile& tile,
                                 std::uint32_t spare_unit) {
  ++tile.generation;
  Rng engine_rng(DeriveSeed(DeriveSeed(tile.base_seed, kRemapEngineSalt),
                            tile.generation));
  auto engine = crossbar::MvmEngine::Create(MakeEngineParams(params_),
                                            tile.in, tile.out, engine_rng);
  if (!engine.ok()) return engine.status();
  auto cost = engine->ProgramWeights(tile.submatrix);
  if (!cost.ok()) return cost.status();
  // Reprogramming a spare rides the slow write path (§VI asymmetry) — the
  // reason detection + retry runs before remap is even considered.
  recovery_cost_.energy_pj += cost->energy_pj;
  recovery_cost_.latency_ns += cost->latency_ns;
  recovery_cost_.operations += cost->operations;
  tile.engine = std::move(engine.value());
  tile.noise_seed = DeriveSeed(DeriveSeed(tile.base_seed, kRemapNoiseSalt),
                               tile.generation);
  tile.unit_id = spare_unit;
  // The fresh engine's write counters restart at the programming writes
  // just spent; re-baseline the drain marks so they feed the new unit.
  tile.ft->drained_write_attempts = 0;
  tile.ft->drained_verify_failures = 0;
  tile.ft->dead.store(false, std::memory_order_release);
  tile.ft->needs_remap.store(false, std::memory_order_release);
  return Status::Ok();
}

std::vector<std::pair<std::size_t, std::size_t>>
DpeAccelerator::RecoverAtBoundary() {
  std::vector<std::pair<std::size_t, std::size_t>> remapped;
  if (!ft_enabled()) return remapped;

  // Drain write/verify and guard-check telemetry into the aging monitor.
  // Guard-check failures feed the verify-failure channel: a tile whose
  // guard keeps tripping is failing its read-out contract.
  if (monitor_) {
    for (MappedMvmLayer& layer : mvm_layers_) {
      for (EngineTile& tile : layer.tiles) {
        const crossbar::EngineWriteStats stats = tile.engine.write_stats();
        const std::uint64_t checks =
            tile.ft->guard_checks.load(std::memory_order_relaxed);
        const std::uint64_t failures =
            tile.ft->guard_failures.load(std::memory_order_relaxed);
        const std::uint64_t d_writes =
            stats.attempts - tile.ft->drained_write_attempts;
        const std::uint64_t d_wfail =
            stats.verify_failures - tile.ft->drained_verify_failures;
        const std::uint64_t d_checks = checks - tile.ft->drained_guard_checks;
        const std::uint64_t d_gfail =
            failures - tile.ft->drained_guard_failures;
        if (d_writes != 0 || d_checks != 0) {
          CIM_CHECK(monitor_
                        ->RecordWrites(tile.unit_id, d_writes,
                                       d_writes + d_checks, d_wfail + d_gfail)
                        .ok());
        }
        tile.ft->drained_write_attempts = stats.attempts;
        tile.ft->drained_verify_failures = stats.verify_failures;
        tile.ft->drained_guard_checks = checks;
        tile.ft->drained_guard_failures = failures;
      }
    }
    if (params_.fault_tolerance.proactive_retirement) {
      const reliability::MonitorReport report = monitor_->Evaluate();
      for (std::uint32_t unit : report.newly_retired) {
        for (MappedMvmLayer& layer : mvm_layers_) {
          for (EngineTile& tile : layer.tiles) {
            if (tile.unit_id == unit) {
              tile.ft->needs_remap.store(true, std::memory_order_release);
            }
          }
        }
      }
    }
  }

  // Remap flagged tiles onto spares in deterministic (layer, tile) order;
  // with the pool exhausted the tile stays flagged and keeps degrading —
  // the graceful floor of the recovery ladder.
  for (std::size_t li = 0; li < mvm_layers_.size(); ++li) {
    MappedMvmLayer& layer = mvm_layers_[li];
    for (std::size_t t = 0; t < layer.tiles.size(); ++t) {
      EngineTile& tile = layer.tiles[t];
      if (!tile.ft->needs_remap.load(std::memory_order_acquire) &&
          !tile.ft->dead.load(std::memory_order_acquire)) {
        continue;
      }
      if (!monitor_ || monitor_->available_spares() == 0) continue;
      auto spare = monitor_->ClaimSpare();
      if (!spare.ok()) continue;
      if (Status s = RemapTile(tile, spare.value()); !s.ok()) {
        return remapped;  // keep already-done remaps; tile stays degraded
      }
      remapped.emplace_back(li, t);
      ++recovery_stats_.remapped;
    }
  }
  return remapped;
}

Expected<InferResult> DpeAccelerator::Infer(const nn::Tensor& input) {
  if (input.shape() != net_.input_shape) {
    return InvalidArgument("input shape mismatch");
  }
  if (injector_ != nullptr && injector_->armed()) {
    injector_->AdvanceTo(committed_elements_);
  }
  ElementTrace trace;
  auto result = RunElement(input, 0, &trace);
  if (result.ok()) {
    if (ft_enabled()) {
      const auto remapped = RecoverAtBoundary();
      for (const auto& flagged : trace.flagged) {
        if (std::find(remapped.begin(), remapped.end(), flagged) !=
            remapped.end()) {
          ++trace.report.remapped;
        }
      }
    }
    result->fault_report = trace.report;
    // remapped is tallied by RecoverAtBoundary itself (one count per remap
    // operation; per-element attribution can legitimately exceed it).
    recovery_stats_.detected += trace.report.detected;
    recovery_stats_.retried += trace.report.retried;
    recovery_stats_.degraded += trace.report.degraded;
    CommitCalls(1);
    ++committed_elements_;
  }
  return result;
}

Expected<std::vector<InferResult>> DpeAccelerator::InferBatch(
    std::span<const nn::Tensor> inputs) {
  for (const nn::Tensor& input : inputs) {
    if (input.shape() != net_.input_shape) {
      return InvalidArgument("input shape mismatch in batch");
    }
  }
  if (inputs.empty()) return std::vector<InferResult>{};

  const std::size_t batch = inputs.size();
  std::vector<std::optional<Expected<InferResult>>> elements(batch);
  std::vector<ElementTrace> traces(batch);

  // Structural faults fire only between waves: the batch is split at every
  // scheduled fault step, so tile state is constant while any element is in
  // flight and recovery decisions cannot race with compute. Without an
  // armed injector this degenerates to one wave — the original batch loop.
  const std::uint64_t base = committed_elements_;
  std::vector<std::uint64_t> boundaries;
  if (injector_ != nullptr && injector_->armed()) {
    boundaries = injector_->StructuralStepsIn(base, base + batch);
  }
  boundaries.push_back(base + batch);

  std::uint64_t wave_start = base;
  for (std::uint64_t wave_end : boundaries) {
    if (injector_ != nullptr && injector_->armed()) {
      injector_->AdvanceTo(wave_start);
    }
    const auto lo = static_cast<std::size_t>(wave_start - base);
    const auto hi = static_cast<std::size_t>(wave_end - base);
    const auto run_element = [&](std::size_t i) {
      const std::size_t b = lo + i;
      elements[b].emplace(RunElement(inputs[b], b, &traces[b]));
    };
    // Batch elements are the outer parallel axis; inside a parallel region
    // RunMvm automatically takes its serial path (no nesting). With one
    // element the batch axis degenerates and the tile axis parallelizes
    // instead.
    if (pool_ != nullptr && hi - lo > 1 && !ThreadPool::InParallelRegion()) {
      pool_->ParallelFor(hi - lo, run_element);
    } else {
      for (std::size_t i = 0; i < hi - lo; ++i) run_element(i);
    }
    if (ft_enabled()) {
      const auto remapped = RecoverAtBoundary();
      if (!remapped.empty()) {
        for (std::size_t b = lo; b < hi; ++b) {
          for (const auto& flagged : traces[b].flagged) {
            if (std::find(remapped.begin(), remapped.end(), flagged) !=
                remapped.end()) {
              ++traces[b].report.remapped;
            }
          }
        }
      }
    }
    wave_start = wave_end;
  }

  std::vector<InferResult> results;
  results.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    Expected<InferResult>& element = *elements[b];
    if (!element.ok()) return element.status();
    results.push_back(std::move(element.value()));
    results.back().fault_report = traces[b].report;
    recovery_stats_.detected += traces[b].report.detected;
    recovery_stats_.retried += traces[b].report.retried;
    recovery_stats_.degraded += traces[b].report.degraded;
  }
  CommitCalls(static_cast<std::uint64_t>(batch));
  committed_elements_ += static_cast<std::uint64_t>(batch);
  return results;
}

std::size_t DpeAccelerator::spares_available() const {
  return monitor_ ? monitor_->available_spares() : 0;
}

Status DpeAccelerator::InjectFault(std::size_t layer_index, std::size_t row,
                                   std::size_t col, device::CellFault fault,
                                   int plane, int slice) {
  if (layer_index >= mvm_layers_.size()) return OutOfRange("layer index");
  if (plane != 0 && plane != 1) return InvalidArgument("plane must be 0 or 1");
  if (slice != kAllSlices && (slice < 0 || slice >= params_.slices())) {
    return OutOfRange("slice index");
  }
  MappedMvmLayer& layer = mvm_layers_[layer_index];
  if (row >= layer.in_dim || col >= layer.out_dim) {
    return OutOfRange("cell coordinate outside the layer's weight matrix");
  }
  // Route the layer-global coordinate to the engine tile that owns it.
  for (EngineTile& tile : layer.tiles) {
    if (row < tile.row_offset || row >= tile.row_offset + tile.in ||
        col < tile.col_offset || col >= tile.col_offset + tile.out) {
      continue;
    }
    const std::size_t r = row - tile.row_offset;
    const std::size_t c = col - tile.col_offset;
    if (slice == kAllSlices) {
      tile.engine.InjectCellFaultAllSlices(plane, r, c, fault);
    } else {
      tile.engine.InjectCellFault(plane, slice, r, c, fault);
    }
    return Status::Ok();
  }
  return NotFound("no engine tile owns the requested cell");
}

}  // namespace cim::dpe
