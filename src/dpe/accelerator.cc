#include "dpe/accelerator.h"

#include <algorithm>
#include <cmath>
#include <variant>

namespace cim::dpe {
namespace {

std::size_t OutDim(std::size_t in, std::size_t kernel, std::size_t stride,
                   std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

double Activate(double v, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone: return v;
    case nn::Activation::kRelu: return std::max(v, 0.0);
    case nn::Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

}  // namespace

DpeAccelerator::DpeAccelerator(const DpeParams& params,
                               const nn::Network& net)
    : params_(params), net_(net) {}

Expected<std::unique_ptr<DpeAccelerator>> DpeAccelerator::Create(
    const DpeParams& params, const nn::Network& net, Rng rng) {
  if (Status s = params.Validate(); !s.ok()) return s;
  if (Status s = net.Validate(); !s.ok()) return s;
  std::unique_ptr<DpeAccelerator> acc(new DpeAccelerator(params, net));

  for (const nn::Layer& layer : net.layers) {
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(dense->weights, dense->in_features,
                                    dense->out_features, rng, &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      // im2col weight matrix: (ic*k*k) x oc, row-major.
      const std::size_t k = conv->kernel;
      const std::size_t in_dim = conv->in_channels * k * k;
      std::vector<double> matrix(in_dim * conv->out_channels, 0.0);
      for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
        for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t row = (ic * k + ky) * k + kx;
              matrix[row * conv->out_channels + oc] =
                  conv->weights[((oc * conv->in_channels + ic) * k + ky) * k +
                                kx];
            }
          }
        }
      }
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(matrix, in_dim, conv->out_channels, rng,
                                    &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    }
  }
  return acc;
}

Status DpeAccelerator::MapMatrix(std::span<const double> matrix,
                                 std::size_t in_dim, std::size_t out_dim,
                                 Rng& rng, MappedMvmLayer* mapped) {
  const std::size_t rows = params_.array.rows;
  const std::size_t cols = params_.array.cols;
  mapped->in_dim = in_dim;
  mapped->out_dim = out_dim;

  crossbar::MvmEngineParams engine_params;
  engine_params.array = params_.array;
  engine_params.weight_bits = params_.weight_bits;
  engine_params.input_bits = params_.input_bits;

  for (std::size_t r0 = 0; r0 < in_dim; r0 += rows) {
    const std::size_t r_len = std::min(rows, in_dim - r0);
    for (std::size_t c0 = 0; c0 < out_dim; c0 += cols) {
      const std::size_t c_len = std::min(cols, out_dim - c0);
      auto engine = crossbar::MvmEngine::Create(engine_params, r_len, c_len,
                                                rng.Fork());
      if (!engine.ok()) return engine.status();
      // Extract the submatrix.
      std::vector<double> sub(r_len * c_len);
      for (std::size_t r = 0; r < r_len; ++r) {
        for (std::size_t c = 0; c < c_len; ++c) {
          sub[r * c_len + c] = matrix[(r0 + r) * out_dim + (c0 + c)];
        }
      }
      auto cost = engine->ProgramWeights(sub);
      if (!cost.ok()) return cost.status();
      // Tiles program in parallel across engines; serialize within none.
      program_cost_.energy_pj += cost->energy_pj;
      program_cost_.latency_ns =
          std::max(program_cost_.latency_ns, cost->latency_ns);
      program_cost_.operations += cost->operations;
      arrays_used_ += 2 * static_cast<std::size_t>(engine_params.slices());
      mapped->tiles.push_back(EngineTile{std::move(engine.value()), r0, c0,
                                         r_len, c_len});
    }
  }
  return Status::Ok();
}

Expected<std::vector<double>> DpeAccelerator::RunMvm(
    MappedMvmLayer& mapped, std::span<const double> x, CostReport* cost) {
  if (x.size() != mapped.in_dim) {
    return InvalidArgument("MVM input dimension mismatch");
  }
  std::vector<double> y(mapped.out_dim, 0.0);
  double max_tile_latency = 0.0;
  for (EngineTile& tile : mapped.tiles) {
    auto result = tile.engine.Compute(
        x.subspan(tile.row_offset, tile.in));
    if (!result.ok()) return result.status();
    for (std::size_t c = 0; c < tile.out; ++c) {
      y[tile.col_offset + c] += result->y[c];
    }
    if (cost != nullptr) {
      cost->energy_pj += result->cost.energy_pj;
      cost->operations += result->cost.operations;
      max_tile_latency = std::max(max_tile_latency, result->cost.latency_ns);
    }
  }
  if (cost != nullptr) cost->latency_ns += max_tile_latency;
  return y;
}

Expected<nn::Tensor> DpeAccelerator::Infer(const nn::Tensor& input,
                                           CostReport* cost) {
  if (input.shape() != net_.input_shape) {
    return InvalidArgument("input shape mismatch");
  }
  nn::Tensor current = input;
  std::size_t mvm_index = 0;
  CostReport local;
  CostReport* acc_cost = cost != nullptr ? cost : &local;

  const auto account_activation = [&](std::size_t elements) {
    acc_cost->energy_pj +=
        static_cast<double>(elements) * params_.activation_energy_pj;
    acc_cost->latency_ns += params_.activation_latency_ns;
  };
  const auto account_buffer = [&](std::size_t bytes) {
    acc_cost->energy_pj +=
        static_cast<double>(bytes) * params_.buffer_energy_per_byte_pj;
  };

  for (const nn::Layer& layer : net_.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) &&
        current.rank() == 3) {
      current = nn::Tensor({current.size()}, current.vec());
    }
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      account_buffer(mapped.in_dim + mapped.out_dim);
      auto y = RunMvm(mapped, current.vec(), acc_cost);
      if (!y.ok()) return y.status();
      for (std::size_t o = 0; o < dense->out_features; ++o) {
        (*y)[o] = Activate((*y)[o] + dense->bias[o], dense->activation);
      }
      account_activation(dense->out_features);
      current = nn::Tensor({dense->out_features}, std::move(y.value()));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      const std::size_t k = conv->kernel;
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, k, conv->stride, conv->padding);
      const std::size_t ow = OutDim(iw, k, conv->stride, conv->padding);
      nn::Tensor out({conv->out_channels, oh, ow});
      std::vector<double> column(mapped.in_dim, 0.0);
      // Latency model mirrors the analytical pipeline: pixels serialize in
      // groups of conv_replication; energy counts every pixel.
      double pixel_latency = 0.0;
      std::uint64_t pixels = 0;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // im2col gather.
          std::fill(column.begin(), column.end(), 0.0);
          for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy =
                    static_cast<std::int64_t>(oy * conv->stride + ky) -
                    static_cast<std::int64_t>(conv->padding);
                const std::int64_t ix =
                    static_cast<std::int64_t>(ox * conv->stride + kx) -
                    static_cast<std::int64_t>(conv->padding);
                if (iy < 0 || ix < 0 || iy >= static_cast<std::int64_t>(ih) ||
                    ix >= static_cast<std::int64_t>(iw)) {
                  continue;
                }
                column[(ic * k + ky) * k + kx] =
                    current.at3(ic, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
              }
            }
          }
          CostReport pixel_cost;
          auto y = RunMvm(mapped, column, &pixel_cost);
          if (!y.ok()) return y.status();
          acc_cost->energy_pj += pixel_cost.energy_pj;
          acc_cost->operations += pixel_cost.operations;
          pixel_latency = std::max(pixel_latency, pixel_cost.latency_ns);
          ++pixels;
          for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
            out.at3(oc, oy, ox) =
                Activate((*y)[oc] + conv->bias[oc], conv->activation);
          }
        }
      }
      const std::uint64_t serialized =
          (pixels + params_.conv_replication - 1) / params_.conv_replication;
      acc_cost->latency_ns +=
          static_cast<double>(serialized) * pixel_latency;
      account_activation(conv->out_channels * oh * ow);
      account_buffer((mapped.in_dim + conv->out_channels) * pixels);
      current = std::move(out);
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      const std::size_t channels = current.shape()[0];
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, pool->window, pool->stride, 0);
      const std::size_t ow = OutDim(iw, pool->window, pool->stride, 0);
      nn::Tensor out({channels, oh, ow});
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double best = -1e300;
            for (std::size_t ky = 0; ky < pool->window; ++ky) {
              for (std::size_t kx = 0; kx < pool->window; ++kx) {
                best = std::max(best, current.at3(c, oy * pool->stride + ky,
                                                  ox * pool->stride + kx));
              }
            }
            out.at3(c, oy, ox) = best;
          }
        }
      }
      account_activation(channels * oh * ow);
      current = std::move(out);
    }
  }
  return current;
}

Status DpeAccelerator::InjectFault(std::size_t layer_index, std::size_t row,
                                   std::size_t col,
                                   device::CellFault fault) {
  if (layer_index >= mvm_layers_.size()) return OutOfRange("layer index");
  if (mvm_layers_[layer_index].tiles.empty()) {
    return FailedPrecondition("layer has no engine tiles");
  }
  mvm_layers_[layer_index].tiles.front().engine.InjectCellFault(
      /*plane=*/0, /*slice=*/0, row, col, fault);
  return Status::Ok();
}

}  // namespace cim::dpe
