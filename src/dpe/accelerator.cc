#include "dpe/accelerator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <variant>

namespace cim::dpe {
namespace {

std::size_t OutDim(std::size_t in, std::size_t kernel, std::size_t stride,
                   std::size_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

double Activate(double v, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone: return v;
    case nn::Activation::kRelu: return std::max(v, 0.0);
    case nn::Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
  }
  return v;
}

}  // namespace

DpeAccelerator::DpeAccelerator(const DpeParams& params,
                               const nn::Network& net)
    : params_(params), net_(net) {}

Expected<std::unique_ptr<DpeAccelerator>> DpeAccelerator::Create(
    const DpeParams& params, const nn::Network& net, Rng rng) {
  if (Status s = params.Validate(); !s.ok()) return s;
  if (Status s = net.Validate(); !s.ok()) return s;
  std::unique_ptr<DpeAccelerator> acc(new DpeAccelerator(params, net));
  // Root of every per-tile noise-stream family; drawn first so the tile
  // seeds do not depend on how the programming path consumes the rng.
  acc->root_seed_ = rng.NextU64();

  for (const nn::Layer& layer : net.layers) {
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(dense->weights, dense->in_features,
                                    dense->out_features, rng, &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      // im2col weight matrix: (ic*k*k) x oc, row-major.
      const std::size_t k = conv->kernel;
      const std::size_t in_dim = conv->in_channels * k * k;
      std::vector<double> matrix(in_dim * conv->out_channels, 0.0);
      for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
        for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t row = (ic * k + ky) * k + kx;
              matrix[row * conv->out_channels + oc] =
                  conv->weights[((oc * conv->in_channels + ic) * k + ky) * k +
                                kx];
            }
          }
        }
      }
      MappedMvmLayer mapped;
      if (Status s = acc->MapMatrix(matrix, in_dim, conv->out_channels, rng,
                                    &mapped);
          !s.ok()) {
        return s;
      }
      acc->mvm_layers_.push_back(std::move(mapped));
    }
  }

  // Walk the shapes once to fix each layer's calls-per-inference (the
  // stride between batch elements in the per-tile noise-stream numbering).
  std::vector<std::size_t> shape = net.input_shape;
  std::size_t mvm_index = 0;
  for (const nn::Layer& layer : net.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) && shape.size() == 3) {
      shape = {shape[0] * shape[1] * shape[2]};
    }
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      acc->mvm_layers_[mvm_index++].calls_per_inference = 1;
      shape = {dense->out_features};
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      const std::size_t oh =
          OutDim(shape[1], conv->kernel, conv->stride, conv->padding);
      const std::size_t ow =
          OutDim(shape[2], conv->kernel, conv->stride, conv->padding);
      acc->mvm_layers_[mvm_index++].calls_per_inference =
          static_cast<std::uint64_t>(oh) * ow;
      shape = {conv->out_channels, oh, ow};
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      shape = {shape[0], OutDim(shape[1], pool->window, pool->stride, 0),
               OutDim(shape[2], pool->window, pool->stride, 0)};
    }
  }

  const std::size_t threads = params.worker_threads == 0
                                  ? HardwareConcurrency()
                                  : params.worker_threads;
  if (threads > 1) {
    // The calling thread participates in every parallel region, so the
    // pool holds one fewer background worker than the requested total.
    acc->pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  return acc;
}

Status DpeAccelerator::MapMatrix(std::span<const double> matrix,
                                 std::size_t in_dim, std::size_t out_dim,
                                 Rng& rng, MappedMvmLayer* mapped) {
  const std::size_t rows = params_.array.rows;
  const std::size_t cols = params_.array.cols;
  mapped->in_dim = in_dim;
  mapped->out_dim = out_dim;

  crossbar::MvmEngineParams engine_params;
  engine_params.array = params_.array;
  engine_params.weight_bits = params_.weight_bits;
  engine_params.input_bits = params_.input_bits;

  for (std::size_t r0 = 0; r0 < in_dim; r0 += rows) {
    const std::size_t r_len = std::min(rows, in_dim - r0);
    for (std::size_t c0 = 0; c0 < out_dim; c0 += cols) {
      const std::size_t c_len = std::min(cols, out_dim - c0);
      auto engine = crossbar::MvmEngine::Create(engine_params, r_len, c_len,
                                                rng.Fork());
      if (!engine.ok()) return engine.status();
      // Extract the submatrix.
      std::vector<double> sub(r_len * c_len);
      for (std::size_t r = 0; r < r_len; ++r) {
        for (std::size_t c = 0; c < c_len; ++c) {
          sub[r * c_len + c] = matrix[(r0 + r) * out_dim + (c0 + c)];
        }
      }
      auto cost = engine->ProgramWeights(sub);
      if (!cost.ok()) return cost.status();
      // Tiles program in parallel across engines; serialize within none.
      program_cost_.energy_pj += cost->energy_pj;
      program_cost_.latency_ns =
          std::max(program_cost_.latency_ns, cost->latency_ns);
      program_cost_.operations += cost->operations;
      arrays_used_ += 2 * static_cast<std::size_t>(engine_params.slices());
      EngineTile tile{std::move(engine.value()), r0, c0, r_len, c_len,
                      DeriveSeed(root_seed_, next_tile_index_)};
      ++next_tile_index_;
      mapped->tiles.push_back(std::move(tile));
    }
  }
  return Status::Ok();
}

Expected<crossbar::MvmResult> DpeAccelerator::RunMvm(
    const MappedMvmLayer& mapped, std::span<const double> x,
    std::uint64_t stream_offset) {
  if (x.size() != mapped.in_dim) {
    return InvalidArgument("MVM input dimension mismatch");
  }
  const std::uint64_t call = mapped.committed_calls + stream_offset;
  const std::size_t tiles = mapped.tiles.size();
  std::vector<std::optional<Expected<crossbar::MvmResult>>> partials(tiles);

  const auto run_tile = [&](std::size_t t) {
    // MvmEngine::Compute with an external rng mutates no engine state, so
    // tiles (and concurrent batch elements touching the same tile) are
    // safe to run on any thread; the draw sequence depends only on the
    // (tile, call) pair.
    auto& tile = const_cast<EngineTile&>(mapped.tiles[t]);
    Rng noise(DeriveSeed(tile.noise_seed, call));
    partials[t].emplace(
        tile.engine.Compute(x.subspan(tile.row_offset, tile.in), &noise));
  };

  if (pool_ != nullptr && tiles > 1 && !ThreadPool::InParallelRegion()) {
    pool_->ParallelFor(tiles, run_tile);
  } else {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
  }

  // Deterministic merge in tile order: partial sums, energy and operation
  // counts accumulate in the same order the serial path used, and the MVM
  // latency is the slowest tile (they fire concurrently in hardware).
  crossbar::MvmResult merged;
  merged.y.assign(mapped.out_dim, 0.0);
  double max_tile_latency = 0.0;
  for (std::size_t t = 0; t < tiles; ++t) {
    Expected<crossbar::MvmResult>& partial = *partials[t];
    if (!partial.ok()) return partial.status();
    const EngineTile& tile = mapped.tiles[t];
    for (std::size_t c = 0; c < tile.out; ++c) {
      merged.y[tile.col_offset + c] += partial->y[c];
    }
    merged.cost.energy_pj += partial->cost.energy_pj;
    merged.cost.operations += partial->cost.operations;
    max_tile_latency = std::max(max_tile_latency, partial->cost.latency_ns);
  }
  merged.cost.latency_ns = max_tile_latency;
  return merged;
}

Expected<InferResult> DpeAccelerator::RunElement(
    const nn::Tensor& input, std::uint64_t element_index) {
  nn::Tensor current = input;
  std::size_t mvm_index = 0;
  CostReport cost;

  const auto account_activation = [&](std::size_t elements) {
    cost.energy_pj +=
        static_cast<double>(elements) * params_.activation_energy_pj;
    cost.latency_ns += params_.activation_latency_ns;
  };
  const auto account_buffer = [&](std::size_t bytes) {
    cost.energy_pj +=
        static_cast<double>(bytes) * params_.buffer_energy_per_byte_pj;
  };

  for (const nn::Layer& layer : net_.layers) {
    if (std::holds_alternative<nn::DenseLayer>(layer) &&
        current.rank() == 3) {
      current = nn::Tensor({current.size()}, current.vec());
    }
    if (const auto* dense = std::get_if<nn::DenseLayer>(&layer)) {
      const MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      account_buffer(mapped.in_dim + mapped.out_dim);
      auto mvm = RunMvm(mapped, current.vec(),
                        element_index * mapped.calls_per_inference);
      if (!mvm.ok()) return mvm.status();
      cost.energy_pj += mvm->cost.energy_pj;
      cost.operations += mvm->cost.operations;
      cost.latency_ns += mvm->cost.latency_ns;
      std::vector<double> y = std::move(mvm->y);
      for (std::size_t o = 0; o < dense->out_features; ++o) {
        y[o] = Activate(y[o] + dense->bias[o], dense->activation);
      }
      account_activation(dense->out_features);
      current = nn::Tensor({dense->out_features}, std::move(y));
    } else if (const auto* conv = std::get_if<nn::Conv2dLayer>(&layer)) {
      const MappedMvmLayer& mapped = mvm_layers_[mvm_index++];
      const std::size_t k = conv->kernel;
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, k, conv->stride, conv->padding);
      const std::size_t ow = OutDim(iw, k, conv->stride, conv->padding);
      nn::Tensor out({conv->out_channels, oh, ow});
      std::vector<double> column(mapped.in_dim, 0.0);
      // Latency model mirrors the analytical pipeline: pixels serialize in
      // groups of conv_replication; energy counts every pixel.
      double pixel_latency = 0.0;
      std::uint64_t pixels = 0;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // im2col gather.
          std::fill(column.begin(), column.end(), 0.0);
          for (std::size_t ic = 0; ic < conv->in_channels; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy =
                    static_cast<std::int64_t>(oy * conv->stride + ky) -
                    static_cast<std::int64_t>(conv->padding);
                const std::int64_t ix =
                    static_cast<std::int64_t>(ox * conv->stride + kx) -
                    static_cast<std::int64_t>(conv->padding);
                if (iy < 0 || ix < 0 || iy >= static_cast<std::int64_t>(ih) ||
                    ix >= static_cast<std::int64_t>(iw)) {
                  continue;
                }
                column[(ic * k + ky) * k + kx] =
                    current.at3(ic, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
              }
            }
          }
          auto mvm = RunMvm(mapped, column,
                            element_index * mapped.calls_per_inference +
                                pixels);
          if (!mvm.ok()) return mvm.status();
          cost.energy_pj += mvm->cost.energy_pj;
          cost.operations += mvm->cost.operations;
          pixel_latency = std::max(pixel_latency, mvm->cost.latency_ns);
          ++pixels;
          for (std::size_t oc = 0; oc < conv->out_channels; ++oc) {
            out.at3(oc, oy, ox) =
                Activate(mvm->y[oc] + conv->bias[oc], conv->activation);
          }
        }
      }
      const std::uint64_t serialized =
          (pixels + params_.conv_replication - 1) / params_.conv_replication;
      cost.latency_ns += static_cast<double>(serialized) * pixel_latency;
      account_activation(conv->out_channels * oh * ow);
      account_buffer((mapped.in_dim + conv->out_channels) * pixels);
      current = std::move(out);
    } else if (const auto* pool = std::get_if<nn::MaxPoolLayer>(&layer)) {
      const std::size_t channels = current.shape()[0];
      const std::size_t ih = current.shape()[1];
      const std::size_t iw = current.shape()[2];
      const std::size_t oh = OutDim(ih, pool->window, pool->stride, 0);
      const std::size_t ow = OutDim(iw, pool->window, pool->stride, 0);
      nn::Tensor out({channels, oh, ow});
      for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double best = -1e300;
            for (std::size_t ky = 0; ky < pool->window; ++ky) {
              for (std::size_t kx = 0; kx < pool->window; ++kx) {
                best = std::max(best, current.at3(c, oy * pool->stride + ky,
                                                  ox * pool->stride + kx));
              }
            }
            out.at3(c, oy, ox) = best;
          }
        }
      }
      account_activation(channels * oh * ow);
      current = std::move(out);
    }
  }
  return InferResult{std::move(current), cost};
}

void DpeAccelerator::CommitCalls(std::uint64_t elements) {
  for (MappedMvmLayer& layer : mvm_layers_) {
    layer.committed_calls += elements * layer.calls_per_inference;
  }
}

Expected<InferResult> DpeAccelerator::Infer(const nn::Tensor& input) {
  if (input.shape() != net_.input_shape) {
    return InvalidArgument("input shape mismatch");
  }
  auto result = RunElement(input, 0);
  if (result.ok()) CommitCalls(1);
  return result;
}

Expected<std::vector<InferResult>> DpeAccelerator::InferBatch(
    std::span<const nn::Tensor> inputs) {
  for (const nn::Tensor& input : inputs) {
    if (input.shape() != net_.input_shape) {
      return InvalidArgument("input shape mismatch in batch");
    }
  }
  if (inputs.empty()) return std::vector<InferResult>{};

  const std::size_t batch = inputs.size();
  std::vector<std::optional<Expected<InferResult>>> elements(batch);
  const auto run_element = [&](std::size_t b) {
    elements[b].emplace(RunElement(inputs[b], b));
  };
  // Batch elements are the outer parallel axis; inside a parallel region
  // RunMvm automatically takes its serial path (no nesting). With one
  // element the batch axis degenerates and the tile axis parallelizes
  // instead.
  if (pool_ != nullptr && batch > 1 && !ThreadPool::InParallelRegion()) {
    pool_->ParallelFor(batch, run_element);
  } else {
    for (std::size_t b = 0; b < batch; ++b) run_element(b);
  }

  std::vector<InferResult> results;
  results.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    Expected<InferResult>& element = *elements[b];
    if (!element.ok()) return element.status();
    results.push_back(std::move(element.value()));
  }
  CommitCalls(static_cast<std::uint64_t>(batch));
  return results;
}

Status DpeAccelerator::InjectFault(std::size_t layer_index, std::size_t row,
                                   std::size_t col,
                                   device::CellFault fault) {
  if (layer_index >= mvm_layers_.size()) return OutOfRange("layer index");
  if (mvm_layers_[layer_index].tiles.empty()) {
    return FailedPrecondition("layer has no engine tiles");
  }
  mvm_layers_[layer_index].tiles.front().engine.InjectCellFault(
      /*plane=*/0, /*slice=*/0, row, col, fault);
  return Status::Ok();
}

}  // namespace cim::dpe
