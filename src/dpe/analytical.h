// Analytical DPE performance/energy model.
//
// Mirrors the behavioural accelerator's cost accounting in closed form so
// that large networks (the §VI sweep) can be evaluated without simulating
// millions of analog cell reads. The behavioural accelerator validates this
// model on small networks (tests/dpe_test.cc) — the standard calibration
// discipline for architecture simulators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dpe/params.h"
#include "nn/network.h"

namespace cim::dpe {

// Cost of one batch-1 inference, plus the standing resources it needs.
struct InferenceEstimate {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  std::uint64_t macs = 0;
  std::size_t arrays_used = 0;       // crossbar arrays resident
  double weight_bytes_touched = 0.0; // per inference (in-array accesses)
  double buffer_bytes = 0.0;         // activations through eDRAM
  // Programming (weight load) cost — the slow asymmetric-write path.
  double program_latency_ns = 0.0;
  double program_energy_pj = 0.0;

  [[nodiscard]] double effective_weight_bandwidth_gbps() const {
    return latency_ns > 0.0 ? weight_bytes_touched / latency_ns : 0.0;
  }
  [[nodiscard]] double average_power_watts() const {
    return latency_ns > 0.0 ? energy_pj / latency_ns * 1e-3 : 0.0;
  }
};

// Per-layer mapping decisions, exposed for DESIGN.md-style introspection
// and the scaling model.
struct LayerMapping {
  std::string kind;        // "dense" / "conv" / "pool"
  std::size_t in_dim = 0;  // MVM rows (ic*k*k for conv)
  std::size_t out_dim = 0; // MVM cols
  std::size_t row_tiles = 0;
  std::size_t col_tiles = 0;
  std::size_t arrays = 0;  // row_tiles * col_tiles * 2 * slices
  std::uint64_t mvm_invocations = 0;  // 1 for dense, oh*ow for conv
};

class AnalyticalDpeModel {
 public:
  explicit AnalyticalDpeModel(DpeParams params = DpeParams::Isaac())
      : params_(std::move(params)) {}

  [[nodiscard]] const DpeParams& params() const { return params_; }

  [[nodiscard]] Expected<std::vector<LayerMapping>> MapNetwork(
      const nn::Network& net) const;

  // Batch-1 inference estimate with all weights resident (the CIM premise:
  // weights never move after programming).
  [[nodiscard]] Expected<InferenceEstimate> EstimateInference(
      const nn::Network& net) const;

 private:
  DpeParams params_;
};

}  // namespace cim::dpe
