#include "dpe/engine_adapter.h"

namespace cim::dpe {

Expected<baseline::EngineCost> DpeEngine::EstimateInference(
    const nn::Network& net) const {
  auto estimate = model_.EstimateInference(net);
  if (!estimate.ok()) return estimate.status();

  baseline::EngineCost cost;
  cost.latency_ns = estimate->latency_ns;
  cost.energy_pj = estimate->energy_pj;
  cost.macs = estimate->macs;

  // Only the network input and final output cross the memory interface —
  // weights are resident after programming and every intermediate
  // activation stays in the on-chip eDRAM buffers.
  auto profile = nn::ProfileNetwork(net);
  if (!profile.ok()) return profile.status();
  if (!profile->empty()) {
    cost.dram_bytes = static_cast<double>(profile->front().in_elements +
                                          profile->back().out_elements);
  }
  return cost;
}

}  // namespace cim::dpe
