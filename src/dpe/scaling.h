// Multi-board scaling model (§VI: "we consider acceptable scaling to
// existing neural networks by having multiple boards interconnected through
// standard and proprietary interconnects. Most of the challenges we expect
// in terms of hiding the asymmetric latency for writing memristor based
// devices.")
//
// The model packs a network's arrays onto boards, charges board-link
// transfers for layer boundaries that cross boards, replicates the network
// across spare boards for throughput, and evaluates the effect of weight
// updates (the slow asymmetric write path) with and without write hiding
// (double-buffered arrays that reprogram in the shadow copy).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dpe/analytical.h"

namespace cim::dpe {

struct ScalingReport {
  std::size_t boards_needed = 0;      // to hold one network replica
  std::size_t replicas = 0;           // fitting in the given boards
  double single_latency_ns = 0.0;     // one inference incl. board crossings
  double throughput_per_sec = 0.0;    // across all replicas
  double scaling_efficiency = 0.0;    // throughput / (replicas-ideal)
  double interboard_bytes = 0.0;      // per inference
  // Weight-update effects.
  double update_stall_fraction = 0.0; // fraction of time lost to writes
  double effective_throughput_per_sec = 0.0;
  std::size_t arrays_total = 0;       // incl. shadow copies if hiding
};

class MultiBoardModel {
 public:
  explicit MultiBoardModel(DpeParams params = DpeParams::Isaac())
      : model_(std::move(params)) {}

  // Evaluate running `net` on `boards` boards while applying
  // `weight_updates_per_sec` full-network reprogram operations.
  // `hide_writes` doubles the array budget (shadow arrays) but removes the
  // stall — the mitigation §VI hints at.
  [[nodiscard]] Expected<ScalingReport> Evaluate(
      const nn::Network& net, std::size_t boards,
      double weight_updates_per_sec, bool hide_writes) const;

  [[nodiscard]] const AnalyticalDpeModel& model() const { return model_; }

 private:
  AnalyticalDpeModel model_;
};

}  // namespace cim::dpe
